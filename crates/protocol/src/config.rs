//! Engine configuration: commit protocol, timeouts, output policy.

use pv_core::SplitMode;
use pv_simnet::SimDuration;

/// Which commit protocol sites run. The three correspond to the approaches
/// of §2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CommitProtocol {
    /// §2.4/§3: two-phase commit; a wait-phase timeout installs in-doubt
    /// polyvalues and releases locks, so processing continues.
    Polyvalue,
    /// §2.2 baseline (Gray-style window minimisation only): a wait-phase
    /// timeout keeps locks and blocks conflicting transactions until the
    /// outcome is learned.
    Blocking2pc,
    /// §2.3 baseline: a wait-phase timeout makes an arbitrary unilateral
    /// decision — completing with the given probability — which may violate
    /// atomicity. Violations are counted, not prevented.
    Relaxed {
        /// Probability that the unilateral decision is *complete*.
        complete_prob: f64,
    },
    /// Gray & Lamport's Paxos Commit: every site doubles as an acceptor, a
    /// participant's vote is a ballot-0 phase-2a message for its own Paxos
    /// instance, and a wait-phase (or coordinator ready) timeout triggers a
    /// higher-ballot takeover instead of installing polyvalues or blocking.
    /// Non-blocking whenever a majority of acceptors is reachable; never
    /// creates polyvalues.
    PaxosCommit,
}

impl CommitProtocol {
    /// A short label for metrics and reports.
    pub fn label(&self) -> &'static str {
        match self {
            CommitProtocol::Polyvalue => "polyvalue",
            CommitProtocol::Blocking2pc => "blocking-2pc",
            CommitProtocol::Relaxed { .. } => "relaxed",
            CommitProtocol::PaxosCommit => "paxos-commit",
        }
    }
}

/// How participants resolve lock conflicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockPolicy {
    /// Conflicts refuse immediately; the coordinator aborts and the client
    /// retries with backoff. Simple and livelock-prone under contention.
    NoWait,
    /// Wound-wait: an older transaction *wounds* (locally aborts) younger
    /// non-staged lock holders and proceeds; a younger one queues behind the
    /// holders until they finish. Deadlock-free by timestamp ordering, and
    /// far fewer client-visible aborts under contention.
    WoundWait,
}

impl LockPolicy {
    /// Short label for metrics and reports.
    pub fn label(&self) -> &'static str {
        match self {
            LockPolicy::NoWait => "no-wait",
            LockPolicy::WoundWait => "wound-wait",
        }
    }
}

/// How a coordinator reports uncertain outputs to clients (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UncertainOutputPolicy {
    /// Present polyvalued outputs to the client as-is.
    Present,
    /// Withhold: the reply is delayed until the uncertainty resolves. (The
    /// engine models this by having the *client* treat the reply as pending;
    /// the commit itself is not delayed.)
    Withhold,
}

/// Static configuration shared by every site of a cluster.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The commit protocol.
    pub protocol: CommitProtocol,
    /// How polytransactions partition alternatives (§3.2).
    pub split_mode: SplitMode,
    /// Coordinator patience for read responses before aborting.
    pub read_timeout: SimDuration,
    /// Coordinator patience for readies before aborting.
    pub ready_timeout: SimDuration,
    /// Participant patience in the wait phase before acting per protocol
    /// (installing polyvalues / blocking / deciding unilaterally).
    pub wait_timeout: SimDuration,
    /// Participant patience holding read locks for a transaction that never
    /// progresses (lease), after which the lease is revoked.
    pub read_lease: SimDuration,
    /// Period of the outcome-inquiry timer while in-doubt transactions are
    /// tracked.
    pub inquire_interval: SimDuration,
    /// Output policy for uncertain results (§3.4).
    pub uncertain_outputs: UncertainOutputPolicy,
    /// Participant lock-conflict resolution.
    pub lock_policy: LockPolicy,
    /// Run the `pv-analysis` static checks on every submitted transaction
    /// and reject (non-retryably) those with `Error`-severity findings
    /// before evaluation starts. Off by default: well-tested workloads
    /// need not pay the analysis cost on every submit.
    pub static_checks: bool,
    /// WAL length (in records) above which a site compacts its log into a
    /// snapshot after applying a decision.
    pub compact_threshold: usize,
    /// Versions a keyspace partition's memtable holds before it flushes
    /// into a sorted run (entry-counted for seed determinism).
    pub memtable_threshold: usize,
    /// Sorted runs a keyspace partition accumulates before a size-tiered
    /// compaction merges them (dropping versions no live snapshot can see).
    pub run_threshold: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            protocol: CommitProtocol::Polyvalue,
            split_mode: SplitMode::Lazy,
            read_timeout: SimDuration::from_millis(100),
            ready_timeout: SimDuration::from_millis(100),
            wait_timeout: SimDuration::from_millis(150),
            read_lease: SimDuration::from_millis(400),
            inquire_interval: SimDuration::from_millis(500),
            uncertain_outputs: UncertainOutputPolicy::Present,
            lock_policy: LockPolicy::NoWait,
            static_checks: false,
            compact_threshold: 4096,
            memtable_threshold: 512,
            run_threshold: 4,
        }
    }
}

impl EngineConfig {
    /// Default configuration with a different protocol.
    pub fn with_protocol(protocol: CommitProtocol) -> Self {
        EngineConfig {
            protocol,
            ..EngineConfig::default()
        }
    }
}

/// A bare protocol converts to a default-everything-else configuration, so
/// builders can take `impl Into<EngineConfig>` and accept either.
impl From<CommitProtocol> for EngineConfig {
    fn from(protocol: CommitProtocol) -> Self {
        EngineConfig::with_protocol(protocol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(CommitProtocol::Polyvalue.label(), "polyvalue");
        assert_eq!(CommitProtocol::Blocking2pc.label(), "blocking-2pc");
        assert_eq!(
            CommitProtocol::Relaxed { complete_prob: 1.0 }.label(),
            "relaxed"
        );
        assert_eq!(CommitProtocol::PaxosCommit.label(), "paxos-commit");
    }

    #[test]
    fn lock_policy_labels() {
        assert_eq!(LockPolicy::NoWait.label(), "no-wait");
        assert_eq!(LockPolicy::WoundWait.label(), "wound-wait");
    }

    #[test]
    fn default_is_polyvalue_lazy() {
        let c = EngineConfig::default();
        assert_eq!(c.protocol, CommitProtocol::Polyvalue);
        assert!(!c.static_checks);
        assert_eq!(c.lock_policy, LockPolicy::NoWait);
        assert_eq!(c.split_mode, SplitMode::Lazy);
        assert!(c.wait_timeout > SimDuration::ZERO);
        assert_eq!(c.uncertain_outputs, UncertainOutputPolicy::Present);
    }

    #[test]
    fn with_protocol_overrides_only_protocol() {
        let c = EngineConfig::with_protocol(CommitProtocol::Blocking2pc);
        assert_eq!(c.protocol, CommitProtocol::Blocking2pc);
        assert_eq!(c.read_timeout, EngineConfig::default().read_timeout);
    }
}
