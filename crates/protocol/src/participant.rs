//! The participant role and the Figure-1 state machine that drives it.
//!
//! The paper's Figure 1 gives each site three states for a transaction —
//! *idle*, *compute*, and *wait* — with the distinguishing polyvalue edge:
//! a wait-phase timeout installs polyvalues and returns to idle instead of
//! blocking. [`transition`] is that figure as a pure function, and it is the
//! code path the protocol actually takes: [`Part`] carries its current
//! [`PartPhase`], every phase change goes through the table, and the action
//! the table returns ([`PartAction::SendReady`],
//! [`PartAction::InstallPolyvalues`], …) is what the handlers perform. The
//! `figure1` benchmark binary prints [`render_figure1`] directly from the
//! same table.

use crate::config::{CommitProtocol, LockPolicy};
use crate::locks::LockTable;
use crate::machine::{site_node, Emit, Output, SiteMachine};
use crate::messages::{AccessMode, Msg};
use crate::timer::TimerKey;
use pv_core::{Entry, ItemId, TxnId, Value};
use pv_simnet::TraceEvent;
use pv_store::{SiteId, SiteStore};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fmt::Write as _;

/// A site's per-transaction protocol state (Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartPhase {
    /// No work in progress for the transaction.
    Idle,
    /// Computing the transaction's results (serving reads, staging writes).
    Compute,
    /// Results computed and `ready` sent; awaiting the outcome.
    Wait,
}

/// Events that drive the participant state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartEvent {
    /// The site begins computing for a new transaction.
    Begin,
    /// Results computed promptly; the site reports `ready`.
    ComputeDone,
    /// A failure prevented prompt computation (or an abort arrived while
    /// computing).
    ComputeFailed,
    /// The coordinator's `complete` message arrived.
    Complete,
    /// The coordinator's `abort` message arrived.
    Abort,
    /// Neither `complete` nor `abort` arrived promptly.
    Timeout,
}

/// The action a transition requires of the site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartAction {
    /// Nothing beyond the state change.
    None,
    /// Send `ready` to the coordinator.
    SendReady,
    /// Install the computed values (the transaction completed).
    Install,
    /// Discard the computed values (the transaction aborted or failed).
    Discard,
    /// Install in-doubt polyvalues `{⟨new, T⟩, ⟨old, ¬T⟩}` and release locks
    /// — the paper's contribution; baselines replace this action.
    InstallPolyvalues,
}

impl fmt::Display for PartPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PartPhase::Idle => "idle",
            PartPhase::Compute => "compute",
            PartPhase::Wait => "wait",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for PartEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PartEvent::Begin => "begin transaction",
            PartEvent::ComputeDone => "results computed promptly",
            PartEvent::ComputeFailed => "failure during compute / abort",
            PartEvent::Complete => "complete received",
            PartEvent::Abort => "abort received",
            PartEvent::Timeout => "no message promptly",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for PartAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PartAction::None => "-",
            PartAction::SendReady => "send ready",
            PartAction::Install => "install results",
            PartAction::Discard => "discard results",
            PartAction::InstallPolyvalues => "install polyvalues",
        };
        write!(f, "{s}")
    }
}

/// The Figure-1 transition function. Returns `None` for events that are not
/// defined in the given state (the site ignores them).
pub fn transition(phase: PartPhase, event: PartEvent) -> Option<(PartPhase, PartAction)> {
    use PartAction as A;
    use PartEvent as E;
    use PartPhase as P;
    match (phase, event) {
        (P::Idle, E::Begin) => Some((P::Compute, A::None)),
        (P::Compute, E::ComputeDone) => Some((P::Wait, A::SendReady)),
        (P::Compute, E::ComputeFailed) => Some((P::Idle, A::Discard)),
        (P::Compute, E::Abort) => Some((P::Idle, A::Discard)),
        (P::Wait, E::Complete) => Some((P::Idle, A::Install)),
        (P::Wait, E::Abort) => Some((P::Idle, A::Discard)),
        (P::Wait, E::Timeout) => Some((P::Idle, A::InstallPolyvalues)),
        _ => None,
    }
}

/// Every defined transition, for rendering Figure 1.
pub fn all_transitions() -> Vec<(PartPhase, PartEvent, PartPhase, PartAction)> {
    let phases = [PartPhase::Idle, PartPhase::Compute, PartPhase::Wait];
    let events = [
        PartEvent::Begin,
        PartEvent::ComputeDone,
        PartEvent::ComputeFailed,
        PartEvent::Complete,
        PartEvent::Abort,
        PartEvent::Timeout,
    ];
    let mut out = Vec::new();
    for p in phases {
        for e in events {
            if let Some((next, action)) = transition(p, e) {
                out.push((p, e, next, action));
            }
        }
    }
    out
}

/// Renders Figure 1 — the transition table plus a Graphviz DOT digraph —
/// from [`all_transitions`]. The `figure1` benchmark binary prints exactly
/// this string, and `results/figure1.txt` pins it.
pub fn render_figure1() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Figure 1: The Update Protocol States");
    let _ = writeln!(s);
    let _ = writeln!(s, "{:<8} | {:<32} | {:<8} | action", "state", "event", "next");
    let _ = writeln!(s, "{}", "-".repeat(80));
    for (from, event, to, action) in all_transitions() {
        // Pad via strings: Display impls that use `write!` ignore width.
        let _ = writeln!(
            s,
            "{:<8} | {:<32} | {:<8} | {}",
            from.to_string(),
            event.to_string(),
            to.to_string(),
            action
        );
    }
    let _ = writeln!(s);
    let _ = writeln!(s, "digraph figure1 {{");
    let _ = writeln!(s, "  rankdir=LR;");
    for state in ["idle", "compute", "wait"] {
        let _ = writeln!(s, "  {state} [shape=circle];");
    }
    for (from, event, to, action) in all_transitions() {
        let _ = writeln!(s, "  {from} -> {to} [label=\"{event}\\n({action})\"];");
    }
    let _ = writeln!(s, "}}");
    s
}

/// Participant-side volatile state for one transaction.
#[derive(Debug, Clone)]
pub(crate) struct Part {
    pub(crate) staged: bool,
    /// The transaction's coordinator (to notify on wound-wait eviction).
    pub(crate) coordinator: SiteId,
    /// Wound-wait age: the coordinator's clock at submission (0 = oldest,
    /// used for post-recovery staged transactions, which are never wounded
    /// anyway).
    pub(crate) ts: u64,
    /// Where the transaction sits in Figure 1. A part that only serves reads
    /// stays [`PartPhase::Idle`] — the figure describes the update protocol,
    /// and reads are pre-protocol bookkeeping; [`SiteMachine::on_prepare`]
    /// drives idle → compute → wait when real update work starts.
    pub(crate) phase: PartPhase,
}

/// A read request parked by the wound-wait policy until its conflicting
/// holders finish.
#[derive(Debug, Clone)]
pub(crate) struct QueuedRead {
    pub(crate) ts: u64,
    pub(crate) txn: TxnId,
    pub(crate) from: SiteId,
    pub(crate) items: Vec<(ItemId, AccessMode)>,
}

/// How a read request was handled by the lock layer.
enum ServeOutcome {
    Served,
    Refused,
    Queued,
}

/// Participant-role state: the lock table, per-transaction [`Part`] records,
/// revocations, unilateral relaxed-mode actions, and the wound-wait queue.
#[derive(Debug, Clone, Default)]
pub struct Participant {
    pub(crate) locks: LockTable,
    pub(crate) parts: BTreeMap<TxnId, Part>,
    pub(crate) revoked: BTreeSet<TxnId>,
    pub(crate) relaxed_actions: BTreeMap<TxnId, bool>,
    /// Wound-wait: read requests parked behind current lock holders.
    pub(crate) read_queue: Vec<QueuedRead>,
}

impl Participant {
    /// The Figure-1 phase of `txn` at this site, if it is active here.
    pub fn phase_of(&self, txn: TxnId) -> Option<PartPhase> {
        self.parts.get(&txn).map(|p| p.phase)
    }

    /// Number of transactions this site currently participates in.
    pub fn active(&self) -> usize {
        self.parts.len()
    }
}

impl SiteMachine {
    pub(crate) fn on_read_req(
        &mut self,
        em: &mut Emit<'_>,
        store: &mut SiteStore,
        from: SiteId,
        txn: TxnId,
        ts: u64,
        items: Vec<(ItemId, AccessMode)>,
    ) {
        if self.participant.revoked.contains(&txn)
            || items.iter().any(|&(item, _)| !store.contains(item))
        {
            em.send(site_node(from), Msg::ReadNack { txn });
            return;
        }
        match self.try_serve_read(em, store, from, txn, ts, &items) {
            ServeOutcome::Served => {}
            ServeOutcome::Refused => {
                em.inc("lock.conflicts");
                em.send(site_node(from), Msg::ReadNack { txn });
            }
            ServeOutcome::Queued => {
                em.inc("lock.queued");
                self.participant.read_queue.push(QueuedRead {
                    ts,
                    txn,
                    from,
                    items,
                });
                em.arm(self.config.read_lease, TimerKey::QueueExpire(txn));
            }
        }
    }

    /// Attempts to lock and answer a read request, applying the configured
    /// conflict policy. All items are known to exist.
    fn try_serve_read(
        &mut self,
        em: &mut Emit<'_>,
        store: &mut SiteStore,
        from: SiteId,
        txn: TxnId,
        ts: u64,
        items: &[(ItemId, AccessMode)],
    ) -> ServeOutcome {
        let mut holders: BTreeSet<TxnId> = BTreeSet::new();
        for &(item, mode) in items {
            holders.extend(
                self.participant
                    .locks
                    .conflicts(txn, item, mode == AccessMode::Write),
            );
        }
        if !holders.is_empty() {
            match self.config.lock_policy {
                LockPolicy::NoWait => return ServeOutcome::Refused,
                LockPolicy::WoundWait => {
                    // An older requester wounds *all* of its blockers, but
                    // only if every one is younger and not yet in the wait
                    // phase (a staged transaction must never be aborted
                    // unilaterally). Otherwise the requester queues.
                    let can_wound = holders.iter().all(|h| {
                        self.participant
                            .parts
                            .get(h)
                            .is_some_and(|p| !p.staged && (ts, txn) < (p.ts, *h))
                    });
                    if !can_wound {
                        return ServeOutcome::Queued;
                    }
                    for victim in holders {
                        self.wound(em, victim);
                    }
                }
            }
        }
        for &(item, mode) in items {
            let ok = match mode {
                AccessMode::Read => self.participant.locks.try_read(txn, item),
                AccessMode::Write => self.participant.locks.try_write(txn, item),
            };
            debug_assert!(ok, "acquisition after conflict resolution cannot fail");
        }
        let mut entries = Vec::with_capacity(items.len());
        let mut sent: Vec<TxnId> = Vec::new();
        for &(item, _) in items {
            let entry = store.get(item).expect("existence checked").clone();
            sent.extend(entry.deps());
            entries.push((item, entry));
        }
        // §3.3: uncertainty is being shipped to the coordinator.
        for dep in sent {
            store.note_sent(dep, from);
            self.ensure_inquire(em);
        }
        self.participant.parts.insert(
            txn,
            Part {
                staged: false,
                coordinator: from,
                ts,
                phase: PartPhase::Idle,
            },
        );
        em.arm(self.config.read_lease, TimerKey::ReadLease(txn));
        em.send(site_node(from), Msg::ReadResp { txn, entries });
        ServeOutcome::Served
    }

    /// Wound-wait eviction: locally aborts a younger, not-yet-staged lock
    /// holder and tells its coordinator to abort the transaction.
    fn wound(&mut self, em: &mut Emit<'_>, victim: TxnId) {
        let Some(part) = self.participant.parts.remove(&victim) else {
            return;
        };
        debug_assert!(!part.staged, "staged transactions are never wounded");
        self.participant.locks.release_all(victim);
        self.participant.revoked.insert(victim);
        em.inc("lock.wounds");
        em.send(
            site_node(part.coordinator),
            Msg::PrepareNack { txn: victim },
        );
    }

    /// Retries parked read requests, oldest first, after locks were freed.
    pub(crate) fn drain_read_queue(&mut self, em: &mut Emit<'_>, store: &mut SiteStore) {
        if self.participant.read_queue.is_empty() {
            return;
        }
        let mut queue = std::mem::take(&mut self.participant.read_queue);
        queue.sort_by_key(|q| (q.ts, q.txn));
        for q in queue {
            if self.participant.revoked.contains(&q.txn) {
                continue; // expired or aborted while parked
            }
            match self.try_serve_read(em, store, q.from, q.txn, q.ts, &q.items) {
                ServeOutcome::Served => {
                    em.inc("lock.queue_served");
                }
                ServeOutcome::Refused => {
                    em.send(site_node(q.from), Msg::ReadNack { txn: q.txn });
                }
                ServeOutcome::Queued => self.participant.read_queue.push(q),
            }
        }
    }

    pub(crate) fn on_prepare(
        &mut self,
        em: &mut Emit<'_>,
        store: &mut SiteStore,
        from: SiteId,
        txn: TxnId,
        writes: Vec<(ItemId, Entry<Value>)>,
    ) {
        // A prepare without a live read lease (crash, revocation) is refused:
        // the values the coordinator computed may be stale.
        let Some(part) = self.participant.parts.get_mut(&txn) else {
            em.send(site_node(from), Msg::PrepareNack { txn });
            return;
        };
        // A duplicated Prepare (network-level duplication, or a coordinator
        // retry) must be idempotent: the writes are already staged, so just
        // re-affirm readiness without re-staging or re-tracing.
        if part.staged && store.pending(txn).is_some() {
            em.send(site_node(from), Msg::Ready { txn });
            return;
        }
        // Figure 1: the update protocol begins when staged work arrives.
        // Staging is instantaneous here (the coordinator already computed the
        // values), so begin and compute-done fire back-to-back and the part
        // lands in the wait phase; the table's send-ready action is the Ready
        // below.
        let (phase, action) = transition(part.phase, PartEvent::Begin)
            .expect("Figure 1 defines begin in the idle state");
        debug_assert_eq!(action, PartAction::None);
        let (phase, action) = transition(phase, PartEvent::ComputeDone)
            .expect("Figure 1 defines compute-done in the compute state");
        debug_assert_eq!(phase, PartPhase::Wait);
        part.phase = phase;
        part.staged = true;
        store.stage(txn, from, writes);
        em.trace(TraceEvent::Prepared {
            txn: txn.raw(),
            site: self.id,
        });
        em.arm(self.config.wait_timeout, TimerKey::PartWait(txn));
        match action {
            PartAction::SendReady => em.send(site_node(from), Msg::Ready { txn }),
            other => debug_assert!(false, "compute-done demands send-ready, got {other}"),
        }
    }

    pub(crate) fn on_decision(
        &mut self,
        em: &mut Emit<'_>,
        store: &mut SiteStore,
        txn: TxnId,
        completed: bool,
    ) {
        self.participant.locks.release_all(txn);
        if let Some(part) = self.participant.parts.remove(&txn) {
            // Figure 1: a wait-phase participant leaves on the outcome
            // message — install on complete, discard on abort. The actual
            // install/discard of staged values happens in `learn_outcome`
            // via the store; the table is consulted so the figure and the
            // code cannot drift apart.
            if part.phase == PartPhase::Wait {
                let event = if completed {
                    PartEvent::Complete
                } else {
                    PartEvent::Abort
                };
                let (next, action) =
                    transition(PartPhase::Wait, event).expect("Figure 1 defines both wait exits");
                debug_assert_eq!(next, PartPhase::Idle);
                debug_assert_eq!(
                    action,
                    if completed {
                        PartAction::Install
                    } else {
                        PartAction::Discard
                    }
                );
            }
        }
        // A decided transaction has nothing to wait for: drop any parked
        // read request it still has (e.g. the coordinator aborted on timeout
        // while the request sat in the wound-wait queue).
        self.participant.read_queue.retain(|q| q.txn != txn);
        self.pc_learn_decision(em, store, txn, completed);
        self.learn_outcome(em, store, txn, completed);
        self.drain_read_queue(em, store);
    }

    pub(crate) fn on_wait_timeout(&mut self, em: &mut Emit<'_>, store: &mut SiteStore, txn: TxnId) {
        let Some(part) = self.participant.parts.get(&txn) else {
            return;
        };
        if !part.staged || store.pending(txn).is_none() {
            return;
        }
        em.inc("txn.in_doubt");
        em.trace(TraceEvent::WaitTimedOut {
            txn: txn.raw(),
            site: self.id,
        });
        match self.config.protocol {
            CommitProtocol::Polyvalue => {
                // Figure 1's wait → idle timeout edge: the table demands
                // install-polyvalues, so install in-doubt polyvalues and
                // release everything.
                let (next, action) = transition(part.phase, PartEvent::Timeout)
                    .expect("Figure 1 defines timeout in the wait state");
                debug_assert_eq!(next, PartPhase::Idle);
                debug_assert_eq!(action, PartAction::InstallPolyvalues);
                let installed = store.install_in_doubt(txn);
                em.inc_by("poly.installed_items", installed.len() as u64);
                em.trace(TraceEvent::PolyvalueInstalled {
                    txn: txn.raw(),
                    site: self.id,
                    items: installed.len() as u32,
                });
                self.recovery.poly_installed_at.insert(txn, em.now);
                for item in &installed {
                    if let Some(entry) = store.get(*item) {
                        em.gauge("poly.depth", entry.deps().len() as f64);
                        em.gauge("poly.width", entry.pair_count() as f64);
                    }
                }
                self.participant.locks.release_all(txn);
                self.participant.parts.remove(&txn);
                self.ensure_inquire(em);
                self.drain_read_queue(em, store);
            }
            CommitProtocol::Blocking2pc => {
                // Keep locks and staging; the items stay unavailable until
                // the outcome is learned. (The baseline replaces Figure 1's
                // install-polyvalues edge with blocking.)
                em.inc("blocking.stalls");
                self.ensure_inquire(em);
            }
            CommitProtocol::Relaxed { complete_prob } => {
                // The machine holds no randomness: ask the driver for the
                // biased coin; it answers with `Input::Coin` within the same
                // logical step and `on_coin` finishes the unilateral action.
                em.out.push(Output::NeedCoin { txn, complete_prob });
            }
            CommitProtocol::PaxosCommit => {
                // Non-blocking by consensus instead of polyvalues: keep the
                // locks and staging, and run a takeover over the acceptor
                // majority to force a verdict. The inquiry tick re-drives it
                // until the decision lands.
                self.start_takeover(em, store, txn);
            }
        }
    }

    /// Completes the §2.3 relaxed protocol's unilateral action once the
    /// driver has flipped the coin requested by
    /// [`Output::NeedCoin`](crate::machine::Output::NeedCoin).
    pub(crate) fn on_coin(
        &mut self,
        em: &mut Emit<'_>,
        store: &mut SiteStore,
        txn: TxnId,
        completed: bool,
    ) {
        // The driver answers synchronously, so the wait-timeout guards still
        // hold; re-check anyway so a misbehaving driver cannot corrupt state.
        let staged = self.participant.parts.get(&txn).is_some_and(|p| p.staged);
        if !staged || store.pending(txn).is_none() {
            return;
        }
        em.inc("relaxed.unilateral");
        store.apply_decision(txn, completed);
        self.participant.relaxed_actions.insert(txn, completed);
        self.participant.locks.release_all(txn);
        self.participant.parts.remove(&txn);
        self.ensure_inquire(em);
        self.drain_read_queue(em, store);
    }

    pub(crate) fn on_read_lease_expired(
        &mut self,
        em: &mut Emit<'_>,
        store: &mut SiteStore,
        txn: TxnId,
    ) {
        let Some(part) = self.participant.parts.get(&txn) else {
            return;
        };
        if part.staged {
            return; // the wait timer governs staged transactions
        }
        self.participant.locks.release_all(txn);
        self.participant.parts.remove(&txn);
        self.participant.revoked.insert(txn);
        self.drain_read_queue(em, store);
    }

    /// A parked read request waited too long: refuse it.
    pub(crate) fn on_queue_expired(&mut self, em: &mut Emit<'_>, _store: &mut SiteStore, txn: TxnId) {
        let Some(pos) = self
            .participant
            .read_queue
            .iter()
            .position(|q| q.txn == txn)
        else {
            return; // already served or dropped
        };
        let q = self.participant.read_queue.remove(pos);
        self.participant.revoked.insert(txn);
        em.inc("lock.queue_expired");
        em.send(site_node(q.from), Msg::ReadNack { txn });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use PartAction as A;
    use PartEvent as E;
    use PartPhase as P;

    #[test]
    fn happy_path_idle_compute_wait_idle() {
        let (p, a) = transition(P::Idle, E::Begin).unwrap();
        assert_eq!((p, a), (P::Compute, A::None));
        let (p, a) = transition(p, E::ComputeDone).unwrap();
        assert_eq!((p, a), (P::Wait, A::SendReady));
        let (p, a) = transition(p, E::Complete).unwrap();
        assert_eq!((p, a), (P::Idle, A::Install));
    }

    #[test]
    fn compute_failure_discards() {
        assert_eq!(
            transition(P::Compute, E::ComputeFailed),
            Some((P::Idle, A::Discard))
        );
        assert_eq!(
            transition(P::Compute, E::Abort),
            Some((P::Idle, A::Discard))
        );
    }

    #[test]
    fn wait_abort_discards() {
        assert_eq!(transition(P::Wait, E::Abort), Some((P::Idle, A::Discard)));
    }

    #[test]
    fn wait_timeout_installs_polyvalues() {
        // The edge that distinguishes the polyvalue protocol from blocking
        // 2PC: wait → idle on timeout, installing polyvalues.
        assert_eq!(
            transition(P::Wait, E::Timeout),
            Some((P::Idle, A::InstallPolyvalues))
        );
    }

    #[test]
    fn undefined_events_are_ignored() {
        assert_eq!(transition(P::Idle, E::Complete), None);
        assert_eq!(transition(P::Idle, E::Timeout), None);
        assert_eq!(transition(P::Wait, E::Begin), None);
        assert_eq!(transition(P::Compute, E::Complete), None);
        assert_eq!(transition(P::Compute, E::Timeout), None);
    }

    #[test]
    fn all_transitions_enumerates_the_figure() {
        let all = all_transitions();
        assert_eq!(all.len(), 7);
        // Every wait-state exit returns to idle (no site ever blocks).
        for (from, _, to, _) in &all {
            if *from == P::Wait {
                assert_eq!(*to, P::Idle);
            }
        }
    }

    #[test]
    fn render_covers_table_and_digraph() {
        let text = render_figure1();
        assert!(text.starts_with("Figure 1: The Update Protocol States"));
        assert!(text.contains("install polyvalues"));
        assert!(text.contains("digraph figure1 {"));
        assert!(text.contains("wait -> idle [label=\"no message promptly\\n(install polyvalues)\"];"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn displays_are_human_readable() {
        assert_eq!(P::Idle.to_string(), "idle");
        assert_eq!(P::Compute.to_string(), "compute");
        assert_eq!(P::Wait.to_string(), "wait");
        assert_eq!(E::Timeout.to_string(), "no message promptly");
        assert_eq!(A::InstallPolyvalues.to_string(), "install polyvalues");
        assert_eq!(A::None.to_string(), "-");
        assert_eq!(E::Begin.to_string(), "begin transaction");
        assert_eq!(E::ComputeDone.to_string(), "results computed promptly");
        assert_eq!(
            E::ComputeFailed.to_string(),
            "failure during compute / abort"
        );
        assert_eq!(E::Complete.to_string(), "complete received");
        assert_eq!(E::Abort.to_string(), "abort received");
        assert_eq!(A::SendReady.to_string(), "send ready");
        assert_eq!(A::Install.to_string(), "install results");
        assert_eq!(A::Discard.to_string(), "discard results");
    }
}
