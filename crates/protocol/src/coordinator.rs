//! The coordinator role: read phase → evaluate → prepare phase → decision.

use crate::config::{CommitProtocol, UncertainOutputPolicy};
use crate::machine::{site_node, Emit, SiteMachine};
use crate::messages::{AbortReason, Msg, TxnResult};
use crate::timer::TimerKey;
use pv_core::expr::evaluate;
use pv_core::{Entry, ItemId, TransactionSpec, TxnId, Value};
use pv_simnet::{Metrics, NodeId, SimTime, TraceEvent};
use pv_store::{SiteId, SiteStore};
use std::collections::{BTreeMap, BTreeSet};

/// The coordinator's phase for one transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CoordPhase {
    Reading,
    Preparing,
}

/// Coordinator-side state for one in-flight transaction (volatile: a
/// coordinator crash aborts the transaction by presumption).
#[derive(Debug, Clone)]
pub(crate) struct Coord {
    pub(crate) client: NodeId,
    pub(crate) req_id: u64,
    pub(crate) spec: TransactionSpec,
    pub(crate) phase: CoordPhase,
    /// The sites asked for reads (only the site set is needed after the
    /// requests go out; keeping the per-site item lists would mean cloning
    /// them once per transaction for no reader).
    pub(crate) read_sites: BTreeSet<SiteId>,
    pub(crate) entries: BTreeMap<ItemId, Entry<Value>>,
    pub(crate) responded: BTreeSet<SiteId>,
    pub(crate) write_sites: BTreeSet<SiteId>,
    pub(crate) readies: BTreeSet<SiteId>,
    /// Paxos Commit only: which acceptors acknowledged each participant's
    /// prepared vote. The transaction completes when every write site's
    /// vote holds a majority of acceptors.
    pub(crate) acks: BTreeMap<SiteId, BTreeSet<SiteId>>,
    pub(crate) pending_result: Option<TxnResult>,
    /// When the client's submit reached this coordinator (phase metrics).
    pub(crate) submitted_at: SimTime,
    /// When the prepare phase began, if it did.
    pub(crate) prepared_at: Option<SimTime>,
}

/// Coordinator-role state: the transactions this site coordinates, the
/// per-epoch id counter, and the §3.4 withheld replies.
#[derive(Debug, Clone, Default)]
pub struct Coordinator {
    pub(crate) coords: BTreeMap<TxnId, Coord>,
    pub(crate) txn_counter: u64,
    /// §3.4 Withhold policy: committed results whose outputs still depend on
    /// in-doubt transactions, waiting for outcomes before replying.
    pub(crate) withheld: Vec<(NodeId, u64, TxnResult)>,
}

impl Coordinator {
    /// Whether this site currently coordinates `txn` (used by the §3.3
    /// inquiry handler: a live coordinator answers "still deciding" by
    /// staying silent).
    pub fn is_coordinating(&self, txn: TxnId) -> bool {
        self.coords.contains_key(&txn)
    }

    /// Number of transactions currently being coordinated.
    pub fn in_flight(&self) -> usize {
        self.coords.len()
    }
}

impl SiteMachine {
    pub(crate) fn on_submit(
        &mut self,
        em: &mut Emit<'_>,
        store: &mut SiteStore,
        client: NodeId,
        req_id: u64,
        spec: TransactionSpec,
    ) {
        em.inc("txn.submitted");
        let txn = self.new_txn(store);
        let writes = spec.write_set();
        let mut modes: BTreeMap<ItemId, crate::messages::AccessMode> = BTreeMap::new();
        for item in spec.read_set() {
            modes.insert(item, crate::messages::AccessMode::Read);
        }
        for item in &writes {
            modes.insert(*item, crate::messages::AccessMode::Write);
        }
        // A transaction touching nothing evaluates immediately.
        if modes.is_empty() {
            let empty: BTreeMap<ItemId, Entry<Value>> = BTreeMap::new();
            let result = match evaluate(&spec, &empty, self.config.split_mode) {
                Ok(out) => {
                    let outputs = out.collate_outputs().expect("no items, no polyvalues");
                    let granted = out.collate_granted().expect("no items, no polyvalues");
                    em.inc("txn.committed");
                    TxnResult::Committed {
                        granted,
                        outputs,
                        was_poly: false,
                    }
                }
                Err(e) => {
                    em.inc("txn.aborted.eval");
                    TxnResult::Aborted {
                        reason: AbortReason::Eval(e.to_string()),
                    }
                }
            };
            em.send(client, Msg::Reply { req_id, result });
            return;
        }
        // Validate placement before contacting anyone.
        if modes
            .keys()
            .any(|item| self.directory.site_of(*item).is_none())
        {
            em.inc("txn.aborted.eval");
            let result = TxnResult::Aborted {
                reason: AbortReason::Eval("transaction touches an unplaced item".into()),
            };
            em.send(client, Msg::Reply { req_id, result });
            return;
        }
        let groups = self
            .directory
            .group_by_site(modes.iter().map(|(&i, &m)| (i, m)));
        let coord = Coord {
            client,
            req_id,
            spec,
            phase: CoordPhase::Reading,
            read_sites: groups.keys().copied().collect(),
            entries: BTreeMap::new(),
            responded: BTreeSet::new(),
            write_sites: BTreeSet::new(),
            readies: BTreeSet::new(),
            acks: BTreeMap::new(),
            pending_result: None,
            submitted_at: em.now,
            prepared_at: None,
        };
        self.coordinator.coords.insert(txn, coord);
        let ts = em.now.as_micros();
        for (site, items) in groups {
            em.send(site_node(site), Msg::ReadReq { txn, ts, items });
        }
        em.arm(self.config.read_timeout, TimerKey::CoordRead(txn));
    }

    pub(crate) fn on_read_resp(
        &mut self,
        em: &mut Emit<'_>,
        store: &mut SiteStore,
        from: SiteId,
        txn: TxnId,
        entries: Vec<(ItemId, Entry<Value>)>,
    ) {
        let Some(coord) = self.coordinator.coords.get_mut(&txn) else {
            return;
        };
        if coord.phase != CoordPhase::Reading {
            return;
        }
        coord.entries.extend(entries);
        coord.responded.insert(from);
        if coord.responded.len() == coord.read_sites.len() {
            self.evaluate_and_prepare(em, store, txn);
        }
    }

    /// All reads are in: run the (poly)evaluator, then either finish a
    /// write-free transaction or ship computed writes to the write sites.
    pub(crate) fn evaluate_and_prepare(&mut self, em: &mut Emit<'_>, store: &mut SiteStore, txn: TxnId) {
        let Some(coord) = self.coordinator.coords.get_mut(&txn) else {
            return;
        };
        let out = match evaluate(&coord.spec, &coord.entries, self.config.split_mode) {
            Ok(out) => out,
            Err(e) => {
                let reason = AbortReason::Eval(e.to_string());
                self.finish_abort(em, store, txn, reason);
                return;
            }
        };
        if out.is_poly() {
            em.inc("txn.polytransactions");
            em.observe("txn.alternatives", out.alts.len() as f64);
            em.trace(TraceEvent::AltSplit {
                txn: txn.raw(),
                alternatives: out.alts.len() as u32,
            });
        }
        let collated = match (
            out.collate_writes(&coord.entries),
            out.collate_outputs(),
            out.collate_granted(),
        ) {
            (Ok(w), Ok(o), Ok(g)) => (w, o, g),
            (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => {
                let reason = AbortReason::Eval(e.to_string());
                self.finish_abort(em, store, txn, reason);
                return;
            }
        };
        let (writes, outputs, granted) = collated;
        let result = TxnResult::Committed {
            granted,
            outputs,
            was_poly: out.is_poly(),
        };
        if writes.is_empty() {
            // Read-only, or denied in every alternative: complete trivially
            // so participants release their read locks.
            store.record_decision(txn, true);
            let coord = self.coordinator.coords.remove(&txn).expect("checked above");
            self.note_decided(em, txn, &coord, true);
            for &site in &coord.read_sites {
                em.send(
                    site_node(site),
                    Msg::Decision {
                        txn,
                        completed: true,
                    },
                );
            }
            self.note_commit_metrics(em, &result);
            self.deliver_result(em, coord.client, coord.req_id, result);
            return;
        }
        // Group the *owned* entries: each write is shipped to exactly one
        // site, so moving them into the per-site groups skips an entry clone
        // per prepared item.
        let groups = self.directory.group_by_site(writes);
        coord.phase = CoordPhase::Preparing;
        coord.write_sites = groups.keys().copied().collect();
        coord.pending_result = Some(result);
        coord.prepared_at = Some(em.now);
        let read_phase = em.now.since(coord.submitted_at).as_secs_f64();
        em.observe("phase.submit_prepared", read_phase);
        // §3.3: record which sites we are sending uncertainty to, so learned
        // outcomes are forwarded to them.
        let mut sent: Vec<(TxnId, SiteId)> = Vec::new();
        for (&site, items) in &groups {
            for (_, entry) in items {
                for dep in entry.deps() {
                    sent.push((dep, site));
                }
            }
        }
        for (dep, site) in sent {
            store.note_sent(dep, site);
            self.ensure_inquire(em);
        }
        if matches!(self.config.protocol, CommitProtocol::PaxosCommit) {
            // Paxos Commit: the prepare carries the full participant set so
            // every vote doubles as a registrar record at the acceptors.
            let parts: Vec<SiteId> = self.coordinator.coords[&txn]
                .write_sites
                .iter()
                .copied()
                .collect();
            for (site, items) in groups {
                self.pc_cast(
                    em,
                    store,
                    site,
                    Msg::PcPrepare {
                        txn,
                        writes: items,
                        parts: parts.clone(),
                    },
                );
            }
        } else {
            for (site, items) in groups {
                em.send(
                    site_node(site),
                    Msg::Prepare {
                        txn,
                        writes: items,
                    },
                );
            }
        }
        em.arm(self.config.ready_timeout, TimerKey::CoordReady(txn));
    }

    pub(crate) fn on_ready(&mut self, em: &mut Emit<'_>, store: &mut SiteStore, from: SiteId, txn: TxnId) {
        let Some(coord) = self.coordinator.coords.get_mut(&txn) else {
            return;
        };
        if coord.phase != CoordPhase::Preparing {
            return;
        }
        coord.readies.insert(from);
        if !coord.readies.is_superset(&coord.write_sites) {
            return;
        }
        // Decide complete, durably, then notify everyone and the client.
        store.record_decision(txn, true);
        let coord = self.coordinator.coords.remove(&txn).expect("checked above");
        self.note_decided(em, txn, &coord, true);
        // Sorted union without building a scratch set per decision.
        for &site in coord.read_sites.union(&coord.write_sites) {
            em.send(
                site_node(site),
                Msg::Decision {
                    txn,
                    completed: true,
                },
            );
        }
        let result = coord.pending_result.expect("set when preparing");
        self.note_commit_metrics(em, &result);
        self.deliver_result(em, coord.client, coord.req_id, result);
    }

    /// Sends (or withholds, per §3.4 policy) a committed result to the
    /// client. Withheld results are released by the recovery manager's
    /// `learn_outcome` once every output is certain; they are volatile, so a
    /// coordinator crash surfaces to the client as a response timeout.
    pub(crate) fn deliver_result(
        &mut self,
        em: &mut Emit<'_>,
        client: NodeId,
        req_id: u64,
        result: TxnResult,
    ) {
        if self.config.uncertain_outputs == UncertainOutputPolicy::Withhold
            && result.has_uncertain_output()
        {
            em.inc("txn.withheld");
            self.coordinator.withheld.push((client, req_id, result));
            self.ensure_inquire(em);
            return;
        }
        em.send(client, Msg::Reply { req_id, result });
    }

    /// Records a coordinator decision in the trace and the phase-latency
    /// histograms (submit→decided always; prepared→decided when the prepare
    /// phase was reached).
    pub(crate) fn note_decided(&self, em: &mut Emit<'_>, txn: TxnId, coord: &Coord, completed: bool) {
        em.trace(TraceEvent::Decided {
            txn: txn.raw(),
            completed,
        });
        let total = em.now.since(coord.submitted_at).as_secs_f64();
        em.observe("phase.submit_decided", total);
        if let Some(prepared_at) = coord.prepared_at {
            let vote_phase = em.now.since(prepared_at).as_secs_f64();
            em.observe("phase.prepared_decided", vote_phase);
        }
        let by_protocol = Metrics::with_label(
            if completed {
                "txn.decided.complete"
            } else {
                "txn.decided.abort"
            },
            "protocol",
            self.config.protocol.label(),
        );
        em.inc_owned(by_protocol);
    }

    pub(crate) fn note_commit_metrics(&self, em: &mut Emit<'_>, result: &TxnResult) {
        em.inc("txn.committed");
        if result.has_uncertain_output() {
            em.inc("txn.uncertain_output");
        }
        if let TxnResult::Committed { granted, .. } = result {
            if granted == &Entry::Simple(Value::Bool(false)) {
                em.inc("txn.denied");
            }
        }
    }

    pub(crate) fn finish_abort(
        &mut self,
        em: &mut Emit<'_>,
        store: &mut SiteStore,
        txn: TxnId,
        reason: AbortReason,
    ) {
        let Some(coord) = self.coordinator.coords.remove(&txn) else {
            return;
        };
        store.record_decision(txn, false);
        self.note_decided(em, txn, &coord, false);
        if matches!(self.config.protocol, CommitProtocol::PaxosCommit) {
            // Acceptors may hold votes for this transaction; the decision
            // must reach all of them so they can prune (and answer any
            // later takeover with the outcome).
            self.paxos.takeovers.remove(&txn);
            for site in 0..self.directory.sites() {
                self.pc_cast(
                    em,
                    store,
                    site,
                    Msg::Decision {
                        txn,
                        completed: false,
                    },
                );
            }
        } else {
            for &site in coord.read_sites.union(&coord.write_sites) {
                em.send(
                    site_node(site),
                    Msg::Decision {
                        txn,
                        completed: false,
                    },
                );
            }
        }
        match &reason {
            AbortReason::LockConflict => em.inc("txn.aborted.lock"),
            AbortReason::Timeout => em.inc("txn.aborted.timeout"),
            AbortReason::Eval(_) => em.inc("txn.aborted.eval"),
            // Static rejections are counted at the submit gate and never
            // reach this mid-protocol abort path.
            AbortReason::Rejected(_) => em.inc("txn.rejected.static"),
        }
        em.send(
            coord.client,
            Msg::Reply {
                req_id: coord.req_id,
                result: TxnResult::Aborted { reason },
            },
        );
    }

    pub(crate) fn on_read_timeout(&mut self, em: &mut Emit<'_>, store: &mut SiteStore, txn: TxnId) {
        if self
            .coordinator
            .coords
            .get(&txn)
            .is_some_and(|c| c.phase == CoordPhase::Reading)
        {
            self.finish_abort(em, store, txn, AbortReason::Timeout);
        }
    }

    pub(crate) fn on_ready_timeout(&mut self, em: &mut Emit<'_>, store: &mut SiteStore, txn: TxnId) {
        if self
            .coordinator
            .coords
            .get(&txn)
            .is_some_and(|c| c.phase == CoordPhase::Preparing)
        {
            if matches!(self.config.protocol, CommitProtocol::PaxosCommit) {
                // Participants may already hold majority-acknowledged votes,
                // so a presumed abort here could contradict a takeover's
                // commit. Run the takeover ourselves instead; its verdict
                // resolves our coordinator state via `pc_learn_decision`.
                self.start_takeover(em, store, txn);
            } else {
                self.finish_abort(em, store, txn, AbortReason::Timeout);
            }
        }
    }
}
