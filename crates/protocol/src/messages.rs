//! Protocol messages exchanged between sites and clients.

use pv_core::{Entry, ItemId, TransactionSpec, TxnId, Value};
use std::fmt;

/// Whether an item is read or written by a transaction at a site, which
/// determines the lock acquired when the coordinator fetches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// Read-only access (shared lock).
    Read,
    /// Read/write access (exclusive lock).
    Write,
}

/// Why a transaction aborted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbortReason {
    /// A lock could not be acquired (no-wait conflict); worth retrying.
    LockConflict,
    /// The coordinator timed out waiting for a site.
    Timeout,
    /// The transaction's expressions failed to evaluate (type error, missing
    /// item, arithmetic fault).
    Eval(String),
    /// The static checks rejected the transaction at submit time (the
    /// `EngineConfig::static_checks` gate); not worth retrying — the spec
    /// itself is wrong. Carries the rendered diagnostics.
    Rejected(String),
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::LockConflict => write!(f, "lock conflict"),
            AbortReason::Timeout => write!(f, "timeout"),
            AbortReason::Eval(e) => write!(f, "evaluation error: {e}"),
            AbortReason::Rejected(report) => write!(f, "rejected by static checks: {report}"),
        }
    }
}

/// The result of a transaction as reported to the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnResult {
    /// The transaction completed.
    Committed {
        /// Collated guard decision: `Bool(true)` when every alternative
        /// granted, a polyvalue when the decision itself is uncertain (§3.4).
        granted: Entry<Value>,
        /// Collated named outputs; polyvalued outputs reflect database
        /// uncertainty per §3.4.
        outputs: Vec<(String, Entry<Value>)>,
        /// Whether the transaction executed as a polytransaction.
        was_poly: bool,
    },
    /// The transaction aborted without effect.
    Aborted {
        /// Why it aborted.
        reason: AbortReason,
    },
}

impl TxnResult {
    /// Whether this result is a commit.
    pub fn is_committed(&self) -> bool {
        matches!(self, TxnResult::Committed { .. })
    }

    /// Whether the commit granted its guard in every alternative.
    pub fn fully_granted(&self) -> bool {
        matches!(
            self,
            TxnResult::Committed {
                granted: Entry::Simple(Value::Bool(true)),
                ..
            }
        )
    }

    /// Whether any output (or the guard) is uncertain.
    pub fn has_uncertain_output(&self) -> bool {
        match self {
            TxnResult::Committed {
                granted, outputs, ..
            } => granted.is_poly() || outputs.iter().any(|(_, e)| e.is_poly()),
            TxnResult::Aborted { .. } => false,
        }
    }

    /// The in-doubt transactions this result's outputs depend on.
    pub fn deps(&self) -> std::collections::BTreeSet<pv_core::TxnId> {
        match self {
            TxnResult::Committed {
                granted, outputs, ..
            } => {
                let mut deps = granted.deps();
                for (_, e) in outputs {
                    deps.extend(e.deps());
                }
                deps
            }
            TxnResult::Aborted { .. } => std::collections::BTreeSet::new(),
        }
    }

    /// Substitutes a learned outcome into every output entry (the §3.4
    /// withhold policy applies this until nothing uncertain remains).
    pub fn reduce(&self, txn: pv_core::TxnId, completed: bool) -> TxnResult {
        match self {
            TxnResult::Committed {
                granted,
                outputs,
                was_poly,
            } => TxnResult::Committed {
                granted: granted.assign_outcome(txn, completed),
                outputs: outputs
                    .iter()
                    .map(|(name, e)| (name.clone(), e.assign_outcome(txn, completed)))
                    .collect(),
                was_poly: *was_poly,
            },
            aborted => aborted.clone(),
        }
    }
}

/// Messages of the distributed commit protocol.
///
/// `Submit`/`Reply` connect clients to coordinators; `ReadReq` through
/// `Decision` are the two-phase protocol of §3.1; `Inquire`/`OutcomeNotify`
/// implement the failure-recovery outcome propagation of §3.3.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Client → coordinator: run this transaction.
    Submit {
        /// Client-chosen request identifier, echoed in the reply.
        req_id: u64,
        /// The transaction to run.
        spec: TransactionSpec,
    },
    /// Coordinator → client: the transaction's result.
    Reply {
        /// Echo of the request id.
        req_id: u64,
        /// The outcome.
        result: TxnResult,
    },
    /// Coordinator → participant: lock and return these items' entries.
    ReadReq {
        /// The requesting transaction.
        txn: TxnId,
        /// The transaction's start timestamp (microseconds of virtual time),
        /// used by the wound-wait lock policy to order transactions by age.
        ts: u64,
        /// Items this site holds, with the lock mode each needs.
        items: Vec<(ItemId, AccessMode)>,
    },
    /// Participant → coordinator: current entries (locks granted).
    ReadResp {
        /// The transaction.
        txn: TxnId,
        /// The requested entries.
        entries: Vec<(ItemId, Entry<Value>)>,
    },
    /// Participant → coordinator: lock conflict; abort and retry.
    ReadNack {
        /// The transaction.
        txn: TxnId,
    },
    /// Coordinator → participant: stage these computed writes (compute phase
    /// result shipping).
    Prepare {
        /// The transaction.
        txn: TxnId,
        /// Computed new entries for items this site holds.
        writes: Vec<(ItemId, Entry<Value>)>,
    },
    /// Participant → coordinator: writes staged durably; in wait phase.
    Ready {
        /// The transaction.
        txn: TxnId,
    },
    /// Participant → coordinator: cannot stage (unknown lease or conflict).
    PrepareNack {
        /// The transaction.
        txn: TxnId,
    },
    /// Coordinator → participants: the transaction's outcome.
    Decision {
        /// The transaction.
        txn: TxnId,
        /// `true` = complete, `false` = abort.
        completed: bool,
    },
    /// Any site → coordinator of `txn`: what was the outcome?
    Inquire {
        /// The in-doubt transaction.
        txn: TxnId,
    },
    /// Outcome propagation (§3.3): response to `Inquire` and the
    /// site-to-site forwarding along `sent_to` lists.
    OutcomeNotify {
        /// The resolved transaction.
        txn: TxnId,
        /// Its outcome.
        completed: bool,
    },
    /// Paxos Commit, coordinator → participant: stage these writes and cast
    /// your ballot-0 vote with the acceptors. Replaces `Prepare` under
    /// [`CommitProtocol::PaxosCommit`](crate::CommitProtocol::PaxosCommit);
    /// carries the full participant set so every vote registers it with the
    /// acceptors (the registrar role — a takeover leader may only commit
    /// once it knows which participants must all be prepared).
    PcPrepare {
        /// The transaction.
        txn: TxnId,
        /// Computed new entries for items this site holds.
        writes: Vec<(ItemId, Entry<Value>)>,
        /// Every write site of the transaction (sorted).
        parts: Vec<pv_store::SiteId>,
    },
    /// Paxos Commit, participant → every acceptor: the ballot-0 phase-2a
    /// message for this participant's own Paxos instance. Durably staged
    /// before sending; an acceptor that already promised a higher ballot
    /// rejects it silently.
    PcVote {
        /// The transaction.
        txn: TxnId,
        /// The voting participant site.
        part: pv_store::SiteId,
        /// The registered participant set (copied from `PcPrepare`).
        parts: Vec<pv_store::SiteId>,
        /// `true` = prepared, `false` = the participant votes abort.
        prepared: bool,
    },
    /// Paxos Commit, acceptor → coordinator: the acceptor durably accepted
    /// `part`'s ballot-0 vote. The coordinator announces *complete* once
    /// every participant's instance has a majority of acceptances.
    PcVoteAck {
        /// The transaction.
        txn: TxnId,
        /// The participant whose vote was accepted.
        part: pv_store::SiteId,
        /// The accepting acceptor site.
        acceptor: pv_store::SiteId,
        /// The accepted vote value.
        prepared: bool,
    },
    /// Paxos Commit, takeover leader → every acceptor: phase 1a at `ballot`.
    /// Sent when a participant's wait phase (or the coordinator's ready
    /// window) times out; the ballot is a fixed function of the leader's
    /// site and storage epoch, so retries are idempotent.
    PcPhase1a {
        /// The stalled transaction.
        txn: TxnId,
        /// The leader's ballot (> 0).
        ballot: u64,
    },
    /// Paxos Commit, acceptor → leader: phase 1b — a durable promise not to
    /// accept anything below `ballot`, reporting everything this acceptor
    /// has accepted so far for the transaction.
    PcPhase1b {
        /// The transaction.
        txn: TxnId,
        /// Echo of the promised ballot.
        ballot: u64,
        /// The reporting acceptor site.
        acceptor: pv_store::SiteId,
        /// Ballot-0 votes this acceptor accepted, as `(participant, prepared)`.
        votes: Vec<(pv_store::SiteId, bool)>,
        /// The registered participant set, if any vote carried it.
        parts: Vec<pv_store::SiteId>,
        /// The highest-ballot verdict this acceptor accepted in phase 2, as
        /// `(ballot, completed)`.
        accepted: Option<(u64, bool)>,
    },
    /// Paxos Commit, takeover leader → every acceptor: phase 2a — accept
    /// this verdict at `ballot`.
    PcPhase2a {
        /// The transaction.
        txn: TxnId,
        /// The leader's ballot.
        ballot: u64,
        /// The proposed verdict (`true` = complete).
        completed: bool,
    },
    /// Paxos Commit, acceptor → leader: phase 2b — the verdict was durably
    /// accepted at `ballot`. A majority of these chooses the verdict.
    PcPhase2b {
        /// The transaction.
        txn: TxnId,
        /// Echo of the accepted ballot.
        ballot: u64,
        /// The accepting acceptor site.
        acceptor: pv_store::SiteId,
        /// Echo of the accepted verdict.
        completed: bool,
    },
    /// Client → site: coordination-free read-only transaction. The site
    /// acquires a snapshot sequence number from its MVCC keyspace and reads
    /// every requested item (all of its items when the list is empty) at
    /// that single point in time — no lock table, no staging, no 2PC.
    SnapshotRead {
        /// Client-chosen request identifier, echoed in the reply.
        req_id: u64,
        /// The items to read; empty = scan every item the site holds.
        items: Vec<ItemId>,
    },
    /// Site → client: the snapshot read's consistent point-in-time view.
    SnapshotReadReply {
        /// Echo of the request id.
        req_id: u64,
        /// The snapshot sequence number the view was taken at.
        snapshot: u64,
        /// The entries visible at that snapshot, in item order.
        entries: Vec<(ItemId, Entry<Value>)>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_core::TxnId;

    #[test]
    fn result_predicates() {
        let committed = TxnResult::Committed {
            granted: Entry::Simple(Value::Bool(true)),
            outputs: vec![],
            was_poly: false,
        };
        assert!(committed.is_committed());
        assert!(committed.fully_granted());
        assert!(!committed.has_uncertain_output());

        let denied = TxnResult::Committed {
            granted: Entry::Simple(Value::Bool(false)),
            outputs: vec![],
            was_poly: false,
        };
        assert!(denied.is_committed());
        assert!(!denied.fully_granted());

        let aborted = TxnResult::Aborted {
            reason: AbortReason::Timeout,
        };
        assert!(!aborted.is_committed());
        assert!(!aborted.fully_granted());
        assert!(!aborted.has_uncertain_output());
    }

    #[test]
    fn uncertain_output_detection() {
        let poly = Entry::in_doubt(
            Entry::Simple(Value::Int(1)),
            Entry::Simple(Value::Int(2)),
            TxnId(1),
        );
        let r = TxnResult::Committed {
            granted: Entry::Simple(Value::Bool(true)),
            outputs: vec![("x".into(), poly)],
            was_poly: true,
        };
        assert!(r.has_uncertain_output());
    }

    #[test]
    fn abort_reason_display() {
        assert_eq!(AbortReason::LockConflict.to_string(), "lock conflict");
        assert_eq!(AbortReason::Timeout.to_string(), "timeout");
        assert!(AbortReason::Eval("bad".into()).to_string().contains("bad"));
        let rejected = AbortReason::Rejected("error[PV001] at guard: int vs bool".into());
        assert!(rejected.to_string().contains("PV001"));
    }
}
