//! The sans-IO site machine: typed inputs in, typed outputs out.
//!
//! [`SiteMachine`] is the whole §3.1 protocol for one site — the coordinator
//! role, the participant role, and the §3.3 recovery manager — as a pure
//! state machine. It holds no clock, no network handle, no RNG, and no timer
//! facility: time arrives as data on every [`SiteMachine::step`] call, and
//! everything the protocol wants done to the outside world comes back as
//! [`Output`] values the driver applies in order. The only impurity is the
//! site's durable [`SiteStore`], which the driver lends to each step —
//! staging, decisions, and outcome tracking must hit the WAL *synchronously*
//! so crash-point coordinates (WAL append sequence numbers) mean the same
//! thing in every runtime.
//!
//! Drivers must:
//!
//! 1. apply outputs **in emission order** (sends and timer arms interleave
//!    with trace/metric records exactly as the protocol produced them — the
//!    simulation's network RNG consumes one draw per send, in order);
//! 2. answer [`Output::NeedCoin`] by feeding [`Input::Coin`] back *within
//!    the same logical step*, before delivering anything else to the
//!    machine;
//! 3. on crash, call [`SiteMachine::crash`] and crash-recover the store; on
//!    recovery, feed [`Input::Recovered`].
//!
//! Because the machine is pure, every runtime — the deterministic simulation
//! (`pv-engine`'s `Cluster`), the thread-per-site live runtime
//! (`LiveCluster`), the crash-point harness, and the exhaustive
//! interleaving explorer in [`crate::explore`] — runs the identical protocol
//! code.

use crate::config::EngineConfig;
use crate::coordinator::Coordinator;
use crate::directory::Directory;
use crate::ids::encode_txn;
use crate::messages::Msg;
use crate::participant::Participant;
use crate::paxos::Paxos;
use crate::recovery::RecoveryManager;
use crate::timer::TimerKey;
use pv_core::TxnId;
use pv_simnet::{NodeId, SimDuration, SimTime, TraceEvent};
use pv_store::{SiteId, SiteStore};

/// Maps a site id to its node (cluster convention: sites are nodes
/// `0..sites`, in order; clients use higher ids).
pub fn site_node(site: SiteId) -> NodeId {
    NodeId(site)
}

/// An event fed into the machine by a driver.
#[derive(Debug, Clone)]
pub enum Input {
    /// A message arrived. Protocol messages from peer sites carry the
    /// sender's site as `from.0`; `Submit` carries the client's node id.
    Msg {
        /// The sending node.
        from: NodeId,
        /// The message.
        msg: Msg,
    },
    /// A timer armed via [`Output::ArmTimer`] fired.
    Timer(TimerKey),
    /// The site recovered from a crash: rebuild volatile state from the
    /// store and re-arm timers. The driver must have crash-recovered the
    /// store (and called [`SiteMachine::crash`]) first.
    Recovered,
    /// The driver's answer to [`Output::NeedCoin`].
    Coin {
        /// The transaction the coin decides.
        txn: TxnId,
        /// The unilateral decision (`true` = complete).
        completed: bool,
    },
}

/// A metric mutation requested by the machine.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricOp {
    /// Increment a counter by one.
    Inc(&'static str),
    /// Increment a dynamically-named counter (labelled variants) by one.
    IncOwned(String),
    /// Increment a counter by `n`.
    IncBy(&'static str, u64),
    /// Record a histogram observation.
    Observe(&'static str, f64),
    /// Record a gauge sample at the step's time.
    Gauge(&'static str, f64),
}

/// An effect the driver must apply to the outside world, in emission order.
#[derive(Debug, Clone)]
pub enum Output {
    /// Send `msg` to node `to`.
    Send {
        /// Destination node.
        to: NodeId,
        /// The message.
        msg: Msg,
    },
    /// Arm a timer firing after `delay`, handed back as [`Input::Timer`].
    ArmTimer {
        /// How long until the timer fires.
        delay: SimDuration,
        /// The typed key identifying what the timer is for.
        key: TimerKey,
    },
    /// Record a protocol trace event, attributed to this site at the step's
    /// time.
    Trace(TraceEvent),
    /// Apply a metric mutation.
    Metric(MetricOp),
    /// The §2.3 relaxed protocol needs a biased coin. The driver draws
    /// `true` with probability `complete_prob` from *its* randomness source
    /// and immediately feeds [`Input::Coin`] back — keeping the machine
    /// itself deterministic.
    NeedCoin {
        /// The transaction awaiting a unilateral decision.
        txn: TxnId,
        /// Probability the decision is *complete*.
        complete_prob: f64,
    },
}

/// Emission helper threaded through the role handlers: the step's time plus
/// the output buffer, mirroring the effect surface the actor `Ctx` used to
/// provide.
pub(crate) struct Emit<'a> {
    pub(crate) now: SimTime,
    pub(crate) out: &'a mut Vec<Output>,
}

impl Emit<'_> {
    pub(crate) fn send(&mut self, to: NodeId, msg: Msg) {
        self.out.push(Output::Send { to, msg });
    }

    pub(crate) fn arm(&mut self, delay: SimDuration, key: TimerKey) {
        self.out.push(Output::ArmTimer { delay, key });
    }

    pub(crate) fn trace(&mut self, event: TraceEvent) {
        self.out.push(Output::Trace(event));
    }

    pub(crate) fn inc(&mut self, name: &'static str) {
        self.out.push(Output::Metric(MetricOp::Inc(name)));
    }

    pub(crate) fn inc_owned(&mut self, name: String) {
        self.out.push(Output::Metric(MetricOp::IncOwned(name)));
    }

    pub(crate) fn inc_by(&mut self, name: &'static str, n: u64) {
        self.out.push(Output::Metric(MetricOp::IncBy(name, n)));
    }

    pub(crate) fn observe(&mut self, name: &'static str, v: f64) {
        self.out.push(Output::Metric(MetricOp::Observe(name, v)));
    }

    pub(crate) fn gauge(&mut self, name: &'static str, v: f64) {
        self.out.push(Output::Metric(MetricOp::Gauge(name, v)));
    }
}

/// One site's protocol state: coordinator role, participant role, and the
/// §3.3 recovery manager. Pure data — clonable, comparable step by step, and
/// model-checkable.
#[derive(Debug, Clone)]
pub struct SiteMachine {
    pub(crate) id: SiteId,
    pub(crate) config: EngineConfig,
    pub(crate) directory: Directory,
    /// Coordinator-role state (transactions this site coordinates).
    pub coordinator: Coordinator,
    /// Participant-role state (transactions coordinated elsewhere).
    pub participant: Participant,
    /// §3.3 recovery state: inquiry tick and polyvalue-lifetime tracking.
    pub recovery: RecoveryManager,
    /// Paxos Commit leader state: takeovers this site drives. Acceptor
    /// state is durable and lives in the store.
    pub paxos: Paxos,
}

impl SiteMachine {
    /// A fresh machine for site `id`.
    pub fn new(id: SiteId, config: EngineConfig, directory: Directory) -> Self {
        SiteMachine {
            id,
            config,
            directory,
            coordinator: Coordinator::default(),
            participant: Participant::default(),
            recovery: RecoveryManager::default(),
            paxos: Paxos::default(),
        }
    }

    /// This site's id.
    pub fn id(&self) -> SiteId {
        self.id
    }

    /// The engine configuration the machine runs under.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The item directory the machine routes by.
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// Whether the machine holds no volatile protocol state (coordinator or
    /// participant); quiescence additionally requires the store to hold no
    /// pending or tracked transactions.
    pub fn is_idle(&self) -> bool {
        self.coordinator.coords.is_empty() && self.participant.parts.is_empty()
    }

    pub(crate) fn new_txn(&mut self, store: &SiteStore) -> TxnId {
        self.coordinator.txn_counter += 1;
        encode_txn(self.id, store.epoch(), self.coordinator.txn_counter)
    }

    /// Advances the machine by one input, appending the effects to `out`.
    /// `now` is the driver's current time; it stamps traces, timestamps, and
    /// phase-latency observations but never *drives* anything — only
    /// [`Input::Timer`] does.
    pub fn step(&mut self, now: SimTime, input: Input, store: &mut SiteStore, out: &mut Vec<Output>) {
        let mut em = Emit { now, out };
        match input {
            Input::Msg { from, msg } => {
                let from_site: SiteId = from.0;
                match msg {
                    Msg::Submit { req_id, spec } => self.on_submit(&mut em, store, from, req_id, spec),
                    Msg::ReadReq { txn, ts, items } => {
                        self.on_read_req(&mut em, store, from_site, txn, ts, items)
                    }
                    Msg::ReadResp { txn, entries } => {
                        self.on_read_resp(&mut em, store, from_site, txn, entries)
                    }
                    Msg::ReadNack { txn } => {
                        self.finish_abort(&mut em, store, txn, crate::messages::AbortReason::LockConflict)
                    }
                    Msg::Prepare { txn, writes } => {
                        self.on_prepare(&mut em, store, from_site, txn, writes)
                    }
                    Msg::Ready { txn } => self.on_ready(&mut em, store, from_site, txn),
                    Msg::PrepareNack { txn } => {
                        self.finish_abort(&mut em, store, txn, crate::messages::AbortReason::LockConflict)
                    }
                    Msg::Decision { txn, completed } => {
                        self.on_decision(&mut em, store, txn, completed)
                    }
                    Msg::Inquire { txn } => self.on_inquire(&mut em, store, from_site, txn),
                    Msg::OutcomeNotify { txn, completed } => {
                        self.on_outcome_notify(&mut em, store, txn, completed)
                    }
                    Msg::PcPrepare { txn, writes, parts } => {
                        self.on_pc_prepare(&mut em, store, from_site, txn, writes, parts)
                    }
                    Msg::PcVote {
                        txn,
                        part,
                        parts,
                        prepared,
                    } => self.on_pc_vote(&mut em, store, from_site, txn, part, parts, prepared),
                    Msg::PcVoteAck {
                        txn,
                        part,
                        acceptor,
                        prepared,
                    } => self.on_pc_vote_ack(&mut em, store, txn, part, acceptor, prepared),
                    Msg::PcPhase1a { txn, ballot } => {
                        self.on_pc_phase1a(&mut em, store, from_site, txn, ballot)
                    }
                    Msg::PcPhase1b {
                        txn,
                        ballot,
                        acceptor,
                        votes,
                        parts,
                        accepted,
                    } => self.on_pc_phase1b(
                        &mut em, store, txn, ballot, acceptor, votes, parts, accepted,
                    ),
                    Msg::PcPhase2a {
                        txn,
                        ballot,
                        completed,
                    } => self.on_pc_phase2a(&mut em, store, from_site, txn, ballot, completed),
                    Msg::PcPhase2b {
                        txn,
                        ballot,
                        acceptor,
                        completed,
                    } => self.on_pc_phase2b(&mut em, store, txn, ballot, acceptor, completed),
                    Msg::SnapshotRead { req_id, items } => {
                        self.on_snapshot_read(&mut em, store, from, req_id, items)
                    }
                    Msg::Reply { .. } | Msg::SnapshotReadReply { .. } => {
                        debug_assert!(false, "sites do not receive replies");
                    }
                }
            }
            Input::Timer(key) => match key {
                TimerKey::CoordRead(txn) => self.on_read_timeout(&mut em, store, txn),
                TimerKey::CoordReady(txn) => self.on_ready_timeout(&mut em, store, txn),
                TimerKey::PartWait(txn) => self.on_wait_timeout(&mut em, store, txn),
                TimerKey::ReadLease(txn) => self.on_read_lease_expired(&mut em, store, txn),
                TimerKey::QueueExpire(txn) => self.on_queue_expired(&mut em, store, txn),
                TimerKey::Inquire => self.on_inquire_tick(&mut em, store),
            },
            Input::Recovered => self.on_recovered(&mut em, store),
            Input::Coin { txn, completed } => self.on_coin(&mut em, store, txn, completed),
        }
    }

    /// Drops all volatile state — the machine-side half of a crash. The
    /// driver is responsible for crash-recovering the store and for the fact
    /// that armed timers die with the node.
    pub fn crash(&mut self) {
        self.participant.locks.clear();
        self.coordinator.coords.clear();
        self.participant.parts.clear();
        self.participant.revoked.clear();
        self.participant.relaxed_actions.clear();
        self.recovery.inquire_armed = false;
        self.coordinator.withheld.clear();
        self.participant.read_queue.clear();
        self.recovery.poly_installed_at.clear();
        self.paxos.takeovers.clear();
    }

    pub(crate) fn ensure_inquire(&mut self, em: &mut Emit<'_>) {
        if !self.recovery.inquire_armed {
            self.recovery.inquire_armed = true;
            em.arm(self.config.inquire_interval, TimerKey::Inquire);
        }
    }

    /// Serves a coordination-free read-only transaction: a snapshot sequence
    /// number is acquired from the store's MVCC keyspace, every requested
    /// item read at that single point in time, and the view returned to the
    /// requester. No lock-table state is touched, nothing is staged, and no
    /// site-to-site protocol message is emitted — the reply to the client is
    /// the only send.
    fn on_snapshot_read(
        &mut self,
        em: &mut Emit<'_>,
        store: &mut SiteStore,
        from: NodeId,
        req_id: u64,
        items: Vec<pv_core::ItemId>,
    ) {
        let (snapshot, entries) = store.snapshot_read(&items);
        em.trace(TraceEvent::SnapshotRead {
            site: self.id,
            snapshot,
            items: entries.len() as u32,
        });
        em.send(
            from,
            Msg::SnapshotReadReply {
                req_id,
                snapshot,
                entries,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::coordinator_of;

    #[test]
    fn txn_ids_are_unique_and_carry_site() {
        let mut m = SiteMachine::new(3, EngineConfig::default(), Directory::Mod(4));
        let store = SiteStore::new();
        let a = m.new_txn(&store);
        let b = m.new_txn(&store);
        assert_ne!(a, b);
        assert_eq!(coordinator_of(a), 3);
        assert_eq!(coordinator_of(b), 3);
    }

    #[test]
    fn fresh_machine_is_idle() {
        let m = SiteMachine::new(0, EngineConfig::default(), Directory::Mod(1));
        assert!(m.is_idle());
        assert_eq!(m.id(), 0);
        assert_eq!(m.config().compact_threshold, 4096);
    }
}
