//! Transaction identifier encoding.
//!
//! A transaction id embeds its coordinator site (and the coordinator's
//! epoch), so any site holding a polyvalue can compute *whom to ask* about
//! the outcome without a directory lookup:
//!
//! ```text
//! 63        48 47        32 31                     0
//! +-----------+------------+------------------------+
//! | site (16) | epoch (16) |      counter (32)      |
//! +-----------+------------+------------------------+
//! ```

use pv_core::TxnId;
use pv_store::SiteId;

/// Builds a transaction id for a coordinator site, epoch, and counter.
///
/// # Panics
///
/// Panics if `site` or `epoch` exceed 16 bits or `counter` exceeds 32 bits —
/// limits far beyond any simulated cluster.
pub fn encode_txn(site: SiteId, epoch: u32, counter: u64) -> TxnId {
    assert!(site < (1 << 16), "site id out of range");
    assert!(epoch < (1 << 16), "epoch out of range");
    assert!(counter < (1 << 32), "transaction counter out of range");
    TxnId((u64::from(site) << 48) | (u64::from(epoch) << 32) | counter)
}

/// The coordinator site embedded in a transaction id.
pub fn coordinator_of(txn: TxnId) -> SiteId {
    (txn.raw() >> 48) as SiteId
}

/// The coordinator epoch embedded in a transaction id.
pub fn epoch_of(txn: TxnId) -> u32 {
    ((txn.raw() >> 32) & 0xFFFF) as u32
}

/// The per-epoch counter embedded in a transaction id.
pub fn counter_of(txn: TxnId) -> u64 {
    txn.raw() & 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let t = encode_txn(7, 3, 12345);
        assert_eq!(coordinator_of(t), 7);
        assert_eq!(epoch_of(t), 3);
        assert_eq!(counter_of(t), 12345);
    }

    #[test]
    fn distinct_sites_give_distinct_ids() {
        assert_ne!(encode_txn(1, 0, 5), encode_txn(2, 0, 5));
        assert_ne!(encode_txn(1, 0, 5), encode_txn(1, 1, 5));
        assert_ne!(encode_txn(1, 0, 5), encode_txn(1, 0, 6));
    }

    #[test]
    fn ids_order_within_a_site_by_epoch_then_counter() {
        assert!(encode_txn(1, 0, 9) < encode_txn(1, 1, 0));
        assert!(encode_txn(1, 1, 0) < encode_txn(1, 1, 1));
    }

    #[test]
    #[should_panic(expected = "site id out of range")]
    fn oversized_site_panics() {
        encode_txn(1 << 16, 0, 0);
    }

    #[test]
    #[should_panic(expected = "counter out of range")]
    fn oversized_counter_panics() {
        encode_txn(0, 0, 1 << 32);
    }

    #[test]
    #[should_panic(expected = "epoch out of range")]
    fn oversized_epoch_panics() {
        encode_txn(0, 1 << 16, 0);
    }
}
