//! The §3.3 recovery manager: inquiries, outcome learning, and polyvalue
//! collapse.

use crate::config::CommitProtocol;
use crate::machine::{site_node, Emit, SiteMachine};
use crate::messages::Msg;
use crate::participant::{Part, PartPhase};
use crate::timer::TimerKey;
use pv_core::{ItemId, TxnId};
use pv_simnet::{SimTime, TraceEvent};
use pv_store::SiteStore;
use std::collections::{BTreeMap, BTreeSet};

/// Recovery-role state: the inquiry tick and the polyvalue-lifetime ledger.
#[derive(Debug, Clone, Default)]
pub struct RecoveryManager {
    /// Whether an inquiry tick is currently armed (at most one at a time).
    pub(crate) inquire_armed: bool,
    /// When this site installed polyvalues for an in-doubt transaction
    /// (volatile; feeds the install→collapse lifetime histogram).
    pub(crate) poly_installed_at: BTreeMap<TxnId, SimTime>,
}

impl RecoveryManager {
    /// Transactions whose polyvalues this site installed and has not yet
    /// seen resolve.
    pub fn unresolved(&self) -> impl Iterator<Item = TxnId> + '_ {
        self.poly_installed_at.keys().copied()
    }
}

impl SiteMachine {
    /// Common path for Decision and OutcomeNotify: apply the outcome to the
    /// store, forward along the §3.3 `sent_to` list, and account for any
    /// unilateral relaxed action.
    pub(crate) fn learn_outcome(
        &mut self,
        em: &mut Emit<'_>,
        store: &mut SiteStore,
        txn: TxnId,
        completed: bool,
    ) {
        // Release withheld replies whose uncertainty this outcome resolves.
        if !self.coordinator.withheld.is_empty() {
            let mut still_withheld = Vec::with_capacity(self.coordinator.withheld.len());
            for (client, req_id, result) in std::mem::take(&mut self.coordinator.withheld) {
                let reduced = result.reduce(txn, completed);
                if reduced.has_uncertain_output() {
                    still_withheld.push((client, req_id, reduced));
                } else {
                    em.inc("txn.withheld_released");
                    em.send(
                        client,
                        Msg::Reply {
                            req_id,
                            result: reduced,
                        },
                    );
                }
            }
            self.coordinator.withheld = still_withheld;
        }
        if let Some(action) = self.participant.relaxed_actions.remove(&txn) {
            if action != completed {
                em.inc("relaxed.violations");
            }
        }
        // A formerly in-doubt transaction resolving closes the uncertainty
        // window here: its polyvalues collapse and the lifetime is recorded.
        if let Some(installed_at) = self.recovery.poly_installed_at.remove(&txn) {
            let lifetime = em.now.since(installed_at);
            em.trace(TraceEvent::OutcomeLearned {
                txn: txn.raw(),
                site: self.id,
                completed,
            });
            em.observe("poly.lifetime", lifetime.as_secs_f64());
            em.trace(TraceEvent::PolyvalueCollapsed {
                txn: txn.raw(),
                site: self.id,
                lifetime_us: lifetime.as_micros(),
            });
        }
        let dep = store.apply_decision(txn, completed);
        for site in dep.sent_to {
            if site != self.id {
                em.inc("outcome.forwarded");
                em.trace(TraceEvent::OutcomeForwarded {
                    txn: txn.raw(),
                    site: self.id,
                    to: site,
                });
                em.send(site_node(site), Msg::OutcomeNotify { txn, completed });
            }
        }
        store.maybe_compact();
    }

    pub(crate) fn on_inquire_tick(&mut self, em: &mut Emit<'_>, store: &mut SiteStore) {
        self.recovery.inquire_armed = false;
        let mut targets: BTreeSet<TxnId> = BTreeSet::new();
        targets.extend(store.tracked_txns());
        targets.extend(store.pending_txns());
        targets.extend(self.participant.relaxed_actions.keys().copied());
        for (_, _, result) in &self.coordinator.withheld {
            targets.extend(result.deps());
        }
        if matches!(self.config.protocol, CommitProtocol::PaxosCommit) {
            // Stranded acceptor state (votes or promises whose decision this
            // site never learned — e.g. it was down during the broadcast)
            // cannot rely on the coordinator: a recovered coordinator has no
            // memory and, under Paxos Commit, may not presume abort. Any
            // acceptor can safely force the verdict itself, so take over
            // rather than inquire; stalled takeovers are re-driven.
            for txn in store.pc_txns() {
                if store.decision_of(txn).is_none() {
                    targets.remove(&txn);
                    self.start_takeover(em, store, txn);
                }
            }
            self.redrive_takeovers(em, store);
            if !self.paxos.takeovers.is_empty() {
                self.ensure_inquire(em);
            }
        }
        if targets.is_empty() {
            return;
        }
        for txn in targets {
            em.inc("inquire.sent");
            em.send(
                site_node(crate::ids::coordinator_of(txn)),
                Msg::Inquire { txn },
            );
        }
        self.ensure_inquire(em);
    }

    pub(crate) fn on_inquire(
        &mut self,
        em: &mut Emit<'_>,
        store: &mut SiteStore,
        from: pv_store::SiteId,
        txn: TxnId,
    ) {
        let completed = match store.decision_of(txn) {
            Some(o) => o,
            None => {
                if self.coordinator.coords.contains_key(&txn) {
                    return; // still deciding; the asker will retry
                }
                if matches!(self.config.protocol, CommitProtocol::PaxosCommit) {
                    // Presumed abort is unsound here: a takeover may commit
                    // from the acceptors' durable votes without this
                    // (possibly amnesiac) coordinator ever knowing. Stay
                    // silent; the asker's own takeover forces the verdict.
                    return;
                }
                // Presumed abort: no durable completion was recorded.
                store.record_decision(txn, false);
                false
            }
        };
        em.send(site_node(from), Msg::OutcomeNotify { txn, completed });
    }

    pub(crate) fn on_outcome_notify(
        &mut self,
        em: &mut Emit<'_>,
        store: &mut SiteStore,
        txn: TxnId,
        completed: bool,
    ) {
        // A blocked (or still-waiting) participant is released by the news.
        if self.participant.parts.remove(&txn).is_some() {
            self.participant.locks.release_all(txn);
        }
        self.pc_learn_decision(em, store, txn, completed);
        self.learn_outcome(em, store, txn, completed);
        self.drain_read_queue(em, store);
    }

    /// Post-crash recovery: fresh epoch, re-acquired locks for staged
    /// wait-phase transactions, and re-armed timers. The driver must have
    /// crash-recovered the store and called [`SiteMachine::crash`] first.
    pub(crate) fn on_recovered(&mut self, em: &mut Emit<'_>, store: &mut SiteStore) {
        // Fresh epoch so new transaction ids cannot collide with pre-crash
        // ones; fresh counter within the epoch.
        store.bump_epoch();
        self.coordinator.txn_counter = 0;
        // Staged wait-phase transactions survived in the WAL: re-acquire
        // their write locks and resume waiting per Figure 1.
        for txn in store.pending_txns() {
            let writes: Vec<ItemId> = store
                .pending(txn)
                .expect("listed as pending")
                .writes
                .iter()
                .map(|(item, _)| *item)
                .collect();
            for item in writes {
                let ok = self.participant.locks.try_write(txn, item);
                debug_assert!(ok, "locks are free right after recovery");
            }
            let coordinator = store.pending(txn).expect("listed as pending").coordinator;
            self.participant.parts.insert(
                txn,
                Part {
                    staged: true,
                    coordinator,
                    ts: 0,
                    phase: PartPhase::Wait,
                },
            );
            em.arm(self.config.wait_timeout, TimerKey::PartWait(txn));
        }
        if store.has_tracked_txns() || !store.pending_txns().is_empty() || !store.pc_txns().is_empty()
        {
            self.ensure_inquire(em);
        }
    }
}
