//! # pv-model — the §4.1 analytic model
//!
//! The paper models the expected number of polyvalued items `P(t)` with a
//! first-order linear ODE over six parameters (`U, F, I, R, Y, D`):
//! creation by failures and by polytransactions, destruction by recovery and
//! by overwriting. This crate provides the steady state
//! `P = UFI/(IR + UY − UD)`, the transient solution, stability analysis, and
//! the Table 1 generator.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod params;
pub mod sensitivity;
mod steady;
pub mod table1;
mod transient;

pub use params::ModelParams;
pub use steady::{decay_rate, prediction_in_validity_region, steady_state, Prediction};
pub use transient::{decay_time, population_at, trace};
