//! Parameters of the §4.1 model of polyvalue creation and deletion.

use std::fmt;

/// The six parameters of the paper's model (§4.1):
///
/// * `U` — updates per second,
/// * `F` — probability an update fails,
/// * `I` — number of items in the database,
/// * `R` — proportion of failures recovered each second,
/// * `Y` — probability the new value of an updated item does not depend on
///   its previous value,
/// * `D` — average number of items the new value depends on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelParams {
    /// Updates per second (`U`).
    pub u: f64,
    /// Probability an update fails (`F`).
    pub f: f64,
    /// Number of items (`I`).
    pub i: f64,
    /// Proportion of failures recovered per second (`R`).
    pub r: f64,
    /// Probability the new value ignores the previous value (`Y`).
    pub y: f64,
    /// Mean dependency fan-in (`D`).
    pub d: f64,
}

impl ModelParams {
    /// The paper's "typical database to which polyvalues may be applied"
    /// (first row of Table 1): `U=10, F=10⁻⁴, I=10⁶, R=10⁻³, Y=0, D=1`.
    pub fn typical() -> Self {
        ModelParams {
            u: 10.0,
            f: 1e-4,
            i: 1e6,
            r: 1e-3,
            y: 0.0,
            d: 1.0,
        }
    }

    /// Builder-style override of `U`.
    pub fn with_u(mut self, u: f64) -> Self {
        self.u = u;
        self
    }

    /// Builder-style override of `F`.
    pub fn with_f(mut self, f: f64) -> Self {
        self.f = f;
        self
    }

    /// Builder-style override of `I`.
    pub fn with_i(mut self, i: f64) -> Self {
        self.i = i;
        self
    }

    /// Builder-style override of `R`.
    pub fn with_r(mut self, r: f64) -> Self {
        self.r = r;
        self
    }

    /// Builder-style override of `Y`.
    pub fn with_y(mut self, y: f64) -> Self {
        self.y = y;
        self
    }

    /// Builder-style override of `D`.
    pub fn with_d(mut self, d: f64) -> Self {
        self.d = d;
        self
    }

    /// Basic sanity: all parameters non-negative, probabilities in `[0,1]`,
    /// at least one item.
    // The negated comparisons are deliberate: `!(x >= 0.0)` also rejects
    // NaN, which `x < 0.0` would accept.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), String> {
        if !(self.u >= 0.0) {
            return Err(format!("U must be non-negative, got {}", self.u));
        }
        if !(0.0..=1.0).contains(&self.f) {
            return Err(format!("F must be a probability, got {}", self.f));
        }
        if !(self.i >= 1.0) {
            return Err(format!("I must be at least 1, got {}", self.i));
        }
        if !(self.r >= 0.0) {
            return Err(format!("R must be non-negative, got {}", self.r));
        }
        if !(0.0..=1.0).contains(&self.y) {
            return Err(format!("Y must be a probability, got {}", self.y));
        }
        if !(self.d >= 0.0) {
            return Err(format!("D must be non-negative, got {}", self.d));
        }
        Ok(())
    }
}

impl fmt::Display for ModelParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "U={} F={} I={} R={} Y={} D={}",
            self.u, self.f, self.i, self.r, self.y, self.d
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_matches_paper() {
        let p = ModelParams::typical();
        assert_eq!(p.u, 10.0);
        assert_eq!(p.f, 1e-4);
        assert_eq!(p.i, 1e6);
        assert_eq!(p.r, 1e-3);
        assert_eq!(p.y, 0.0);
        assert_eq!(p.d, 1.0);
        p.validate().unwrap();
    }

    #[test]
    fn builders_override_one_field() {
        let p = ModelParams::typical().with_u(100.0).with_d(5.0);
        assert_eq!(p.u, 100.0);
        assert_eq!(p.d, 5.0);
        assert_eq!(p.i, 1e6);
        let p2 = p.with_f(0.01).with_i(1e4).with_r(0.01).with_y(1.0);
        assert_eq!((p2.f, p2.i, p2.r, p2.y), (0.01, 1e4, 0.01, 1.0));
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(ModelParams::typical().with_f(1.5).validate().is_err());
        assert!(ModelParams::typical().with_y(-0.1).validate().is_err());
        assert!(ModelParams::typical().with_i(0.0).validate().is_err());
        assert!(ModelParams::typical().with_u(-1.0).validate().is_err());
        assert!(ModelParams::typical().with_r(-1.0).validate().is_err());
        assert!(ModelParams::typical().with_d(-1.0).validate().is_err());
        assert!(ModelParams::typical().with_f(f64::NAN).validate().is_err());
    }

    #[test]
    fn display_lists_parameters() {
        let s = ModelParams::typical().to_string();
        assert!(s.contains("U=10") && s.contains("I=1000000"));
    }
}
