//! Parameter-space exploration of the §4.1 model.
//!
//! "Space limitations in this paper prevent a thorough exploration of the
//! parameter space, however the individual effects of the parameters can be
//! clearly seen from the equations and the data." This module does that
//! exploration programmatically: per-parameter sweeps, log-log elasticities,
//! and the stability boundary where polytransaction growth outruns recovery.

use crate::params::ModelParams;
use crate::steady::{steady_state, Prediction};

/// One of the model's six parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Updates per second.
    U,
    /// Failure probability per update.
    F,
    /// Database size in items.
    I,
    /// Recovery rate.
    R,
    /// Probability an update ignores the previous value.
    Y,
    /// Mean dependency fan-in.
    D,
}

impl Axis {
    /// All six axes, for sweeping.
    pub fn all() -> [Axis; 6] {
        [Axis::U, Axis::F, Axis::I, Axis::R, Axis::Y, Axis::D]
    }

    /// Reads this parameter from a parameter set.
    pub fn get(self, p: &ModelParams) -> f64 {
        match self {
            Axis::U => p.u,
            Axis::F => p.f,
            Axis::I => p.i,
            Axis::R => p.r,
            Axis::Y => p.y,
            Axis::D => p.d,
        }
    }

    /// Returns a copy of `p` with this parameter set to `v`.
    pub fn set(self, p: &ModelParams, v: f64) -> ModelParams {
        let mut q = *p;
        match self {
            Axis::U => q.u = v,
            Axis::F => q.f = v,
            Axis::I => q.i = v,
            Axis::R => q.r = v,
            Axis::Y => q.y = v,
            Axis::D => q.d = v,
        }
        q
    }

    /// The axis's name.
    pub fn name(self) -> &'static str {
        match self {
            Axis::U => "U",
            Axis::F => "F",
            Axis::I => "I",
            Axis::R => "R",
            Axis::Y => "Y",
            Axis::D => "D",
        }
    }
}

/// Sweeps one parameter over `values`, returning `(value, prediction)`
/// pairs.
pub fn sweep(base: &ModelParams, axis: Axis, values: &[f64]) -> Vec<(f64, Prediction)> {
    values
        .iter()
        .map(|&v| (v, steady_state(&axis.set(base, v))))
        .collect()
}

/// The elasticity `d ln P / d ln x` of the steady state with respect to one
/// parameter, by central log-space finite difference. `None` where the
/// model is unstable or the parameter is zero (no log derivative exists).
pub fn elasticity(base: &ModelParams, axis: Axis) -> Option<f64> {
    let x = axis.get(base);
    if x <= 0.0 {
        return None;
    }
    let h = 1e-4;
    let up = steady_state(&axis.set(base, x * (1.0 + h))).value()?;
    let down = steady_state(&axis.set(base, x * (1.0 - h))).value()?;
    if up <= 0.0 || down <= 0.0 {
        return None;
    }
    Some((up.ln() - down.ln()) / ((1.0 + h).ln() - (1.0 - h).ln()))
}

/// The dependency fan-in at which the first-order model loses stability:
/// `D* = (IR + UY)/U`. Above it, polytransactions create polyvalues faster
/// than recovery and overwriting destroy them.
pub fn stability_boundary_d(p: &ModelParams) -> f64 {
    (p.i * p.r + p.u * p.y) / p.u
}

/// The update rate at which the model loses stability for fixed `D > Y`:
/// `U* = IR / (D − Y)`. `None` when `D ≤ Y` (stable at any rate).
pub fn stability_boundary_u(p: &ModelParams) -> Option<f64> {
    if p.d <= p.y {
        return None;
    }
    Some(p.i * p.r / (p.d - p.y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_get_set_round_trip() {
        let p = ModelParams::typical();
        for axis in Axis::all() {
            let v = axis.get(&p);
            let q = axis.set(&p, v * 2.0);
            assert_eq!(axis.get(&q), v * 2.0, "{}", axis.name());
            // Other axes untouched.
            for other in Axis::all() {
                if other != axis {
                    assert_eq!(other.get(&q), other.get(&p));
                }
            }
        }
    }

    #[test]
    fn failure_rate_elasticity_is_exactly_one() {
        // P ∝ F, so d ln P / d ln F = 1.
        let e = elasticity(&ModelParams::typical(), Axis::F).unwrap();
        assert!((e - 1.0).abs() < 1e-6, "{e}");
    }

    #[test]
    fn recovery_elasticity_is_near_minus_one() {
        // With UD ≪ IR, P ≈ UF/R, so the R elasticity approaches −1.
        let e = elasticity(&ModelParams::typical(), Axis::R).unwrap();
        assert!(e < -0.9 && e > -1.1, "{e}");
    }

    #[test]
    fn dependency_elasticity_grows_near_the_boundary() {
        // Close to D*, the denominator vanishes and the D elasticity blows
        // up — the quantitative form of "one would not wish to operate" a
        // database there.
        let p = ModelParams::typical().with_i(2e4); // IR = 20, UD = 10 at D=1
        let near = elasticity(&p.with_d(1.9), Axis::D).unwrap();
        let far = elasticity(&p.with_d(0.5), Axis::D).unwrap();
        assert!(near > 5.0 * far, "near {near} vs far {far}");
    }

    #[test]
    fn elasticity_none_cases() {
        // Y = 0 has no log-derivative.
        assert!(elasticity(&ModelParams::typical(), Axis::Y).is_none());
        // Unstable region.
        let unstable = ModelParams::typical().with_i(1e3).with_d(200.0);
        assert!(elasticity(&unstable, Axis::F).is_none());
    }

    #[test]
    fn sweep_reproduces_table1_spine() {
        let base = ModelParams::typical();
        let swept = sweep(&base, Axis::F, &[1e-4, 1e-3, 5e-3]);
        let ps: Vec<f64> = swept.iter().map(|(_, p)| p.value().unwrap()).collect();
        assert!((ps[0] - 1.0101).abs() < 0.001);
        assert!((ps[1] - 10.101).abs() < 0.01);
        assert!((ps[2] - 50.505).abs() < 0.01);
    }

    #[test]
    fn stability_boundaries() {
        let p = ModelParams::typical().with_i(2e4); // IR = 20, U = 10
        assert!((stability_boundary_d(&p) - 2.0).abs() < 1e-12);
        // At D just below the boundary the model is stable; above, not.
        assert!(steady_state(&p.with_d(1.99)).value().is_some());
        assert_eq!(steady_state(&p.with_d(2.01)), Prediction::Unstable);
        // U boundary for D = 2: U* = IR/(D−Y) = 20/2 = 10.
        let q = p.with_d(2.0);
        assert!((stability_boundary_u(&q).unwrap() - 10.0).abs() < 1e-12);
        assert!(stability_boundary_u(&p.with_d(0.0)).is_none());
        assert!(steady_state(&q.with_u(9.9)).value().is_some());
        assert_eq!(steady_state(&q.with_u(10.1)), Prediction::Unstable);
    }

    #[test]
    fn axis_names() {
        let names: Vec<&str> = Axis::all().iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["U", "F", "I", "R", "Y", "D"]);
    }
}
