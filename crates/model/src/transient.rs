//! Transient solution `P(t)` of the §4.1 model.
//!
//! The linear ODE `P'(t) = UF − λ·P(t)` with `λ = R + (UY − UD)/I` has the
//! solution `P(t) = P∞ + (P₀ − P∞)·e^(−λt)`: any deviation from the steady
//! state decays exponentially — the paper's stability argument ("a serious
//! failure causing the introduction of many polyvalues does not cause the
//! number of polyvalues to grow without limit").

use crate::params::ModelParams;
use crate::steady::decay_rate;

/// The expected polyvalue population at time `t` (seconds) starting from
/// `p0` polyvalues at `t = 0`.
///
/// For unstable parameter regions (`λ ≤ 0`) the first-order model grows
/// without bound; the exponential form still applies and is returned as-is,
/// matching the paper's caveat that it no longer *predicts* a real system.
pub fn population_at(params: &ModelParams, p0: f64, t: f64) -> f64 {
    let lambda = decay_rate(params);
    if lambda.abs() < 1e-15 {
        // Degenerate: pure accumulation at rate UF.
        return p0 + params.u * params.f * t;
    }
    let pinf = params.u * params.f / lambda;
    pinf + (p0 - pinf) * (-lambda * t).exp()
}

/// Time for a deviation from steady state to decay by `factor` (e.g. `0.5`
/// for a half-life). `None` in unstable regions.
pub fn decay_time(params: &ModelParams, factor: f64) -> Option<f64> {
    assert!(factor > 0.0 && factor < 1.0, "factor must be in (0,1)");
    let lambda = decay_rate(params);
    if lambda <= 0.0 {
        return None;
    }
    Some(-factor.ln() / lambda)
}

/// Samples `P(t)` at `n` evenly spaced times over `[0, horizon]` (inclusive
/// endpoints), for plotting against simulation traces.
pub fn trace(params: &ModelParams, p0: f64, horizon: f64, n: usize) -> Vec<(f64, f64)> {
    assert!(n >= 2, "a trace needs at least two points");
    (0..n)
        .map(|k| {
            let t = horizon * k as f64 / (n - 1) as f64;
            (t, population_at(params, p0, t))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steady::{steady_state, Prediction};

    #[test]
    fn starts_at_p0_and_converges_to_steady_state() {
        let p = ModelParams::typical();
        let pinf = match steady_state(&p) {
            Prediction::Stable(v) => v,
            Prediction::Unstable => panic!("typical is stable"),
        };
        assert!((population_at(&p, 100.0, 0.0) - 100.0).abs() < 1e-9);
        let far = population_at(&p, 100.0, 1e5);
        assert!((far - pinf).abs() < 1e-6, "far future {far} vs {pinf}");
    }

    #[test]
    fn decay_is_monotone_from_above_and_below() {
        let p = ModelParams::typical();
        let pinf = steady_state(&p).value().unwrap();
        let mut last = population_at(&p, 100.0, 0.0);
        for k in 1..50 {
            let v = population_at(&p, 100.0, k as f64 * 100.0);
            assert!(v < last, "burst must decay monotonically");
            assert!(v > pinf, "never undershoots the steady state");
            last = v;
        }
        let mut last = population_at(&p, 0.0, 0.0);
        for k in 1..50 {
            let v = population_at(&p, 0.0, k as f64 * 100.0);
            assert!(v > last, "empty start must fill monotonically");
            assert!(v < pinf);
            last = v;
        }
    }

    #[test]
    fn satisfies_the_ode_numerically() {
        let p = ModelParams::typical().with_d(3.0).with_y(0.5);
        let lambda = crate::steady::decay_rate(&p);
        let h = 1e-4;
        for &t in &[0.0, 10.0, 500.0] {
            let x = population_at(&p, 40.0, t);
            let dx = (population_at(&p, 40.0, t + h) - population_at(&p, 40.0, t - h)) / (2.0 * h);
            let rhs = p.u * p.f - lambda * x;
            assert!((dx - rhs).abs() < 1e-6, "t={t}: {dx} vs {rhs}");
        }
    }

    #[test]
    fn half_life_matches_analytic_form() {
        let p = ModelParams::typical();
        let t_half = decay_time(&p, 0.5).unwrap();
        let pinf = steady_state(&p).value().unwrap();
        let v = population_at(&p, pinf + 80.0, t_half);
        assert!(((v - pinf) - 40.0).abs() < 1e-6);
    }

    #[test]
    fn unstable_region_has_no_decay_time_and_grows() {
        let p = ModelParams::typical().with_d(500.0).with_i(1e3);
        assert_eq!(decay_time(&p, 0.5), None);
        let early = population_at(&p, 10.0, 1.0);
        let late = population_at(&p, 10.0, 100.0);
        assert!(late > early, "unstable model must grow");
    }

    #[test]
    fn zero_lambda_accumulates_linearly() {
        // R = 0, Y = D balance: λ = 0 exactly.
        let p = ModelParams {
            u: 10.0,
            f: 0.01,
            i: 1e4,
            r: 0.0,
            y: 0.5,
            d: 0.5,
        };
        assert!((population_at(&p, 5.0, 10.0) - (5.0 + 10.0 * 0.01 * 10.0)).abs() < 1e-9);
    }

    #[test]
    fn trace_is_evenly_spaced() {
        let p = ModelParams::typical();
        let tr = trace(&p, 50.0, 100.0, 11);
        assert_eq!(tr.len(), 11);
        assert_eq!(tr[0].0, 0.0);
        assert_eq!(tr[10].0, 100.0);
        assert!((tr[1].0 - 10.0).abs() < 1e-9);
        assert!((tr[0].1 - 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "factor must be in (0,1)")]
    fn bad_decay_factor_panics() {
        let _ = decay_time(&ModelParams::typical(), 1.5);
    }
}
