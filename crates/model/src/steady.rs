//! Steady-state solution of the §4.1 differential equation.
//!
//! The paper models the number of polyvalued items `P(t)` by
//!
//! ```text
//! P'(t) = UF + UD·P/I − UY·P/I − R·P
//! ```
//!
//! — creation by failures (`UF`), creation by polytransactions (`UD·P/I`),
//! destruction by overwriting with simple values (`UY·P/I`), and destruction
//! by failure recovery (`R·P`). Solving gives the steady state
//! `P = UFI / (IR + UY − UD)`, valid while `P ≪ I`.

use crate::params::ModelParams;

/// The model's prediction for the steady-state polyvalue population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Prediction {
    /// The population converges to this expected value.
    Stable(f64),
    /// The first-order model predicts unbounded growth (`IR + UY ≤ UD`):
    /// polytransactions create polyvalues faster than recovery and
    /// overwriting destroy them. The paper notes such parameters describe a
    /// system one "would not wish to operate".
    Unstable,
}

impl Prediction {
    /// The stable value, if any.
    pub fn value(self) -> Option<f64> {
        match self {
            Prediction::Stable(p) => Some(p),
            Prediction::Unstable => None,
        }
    }
}

/// The decay rate `λ = R + (UY − UD)/I` of deviations from the steady state.
/// Positive `λ` means the system is stable (the paper's first noted point).
pub fn decay_rate(p: &ModelParams) -> f64 {
    p.r + (p.u * p.y - p.u * p.d) / p.i
}

/// The steady-state expected number of polyvalues,
/// `P = UFI / (IR + UY − UD)` (§4.1).
pub fn steady_state(p: &ModelParams) -> Prediction {
    let denom = p.i * p.r + p.u * p.y - p.u * p.d;
    if denom <= 0.0 {
        return Prediction::Unstable;
    }
    Prediction::Stable(p.u * p.f * p.i / denom)
}

/// Whether the first-order approximation `(1 − P/I) ≈ 1` is trustworthy:
/// the predicted population must be small relative to the database.
pub fn prediction_in_validity_region(p: &ModelParams) -> bool {
    match steady_state(p) {
        Prediction::Stable(pred) => pred < 0.05 * p.i,
        Prediction::Unstable => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stable(p: &ModelParams) -> f64 {
        steady_state(p).value().expect("stable")
    }

    #[test]
    fn typical_parameters_give_paper_value() {
        // Table 1 row 1: P = 1.01.
        let p = ModelParams::typical();
        assert!((stable(&p) - 1.0101).abs() < 0.001);
    }

    #[test]
    fn tenfold_rate_gives_11_11() {
        // Table 1: U = 100 → P = 11.11.
        let p = ModelParams::typical().with_u(100.0);
        assert!((stable(&p) - 11.111).abs() < 0.01);
    }

    #[test]
    fn smaller_database_raises_density() {
        // Table 1: I = 100,000 → P = 1.11; I = 20,000 → P = 2.00.
        let p = ModelParams::typical().with_i(1e5);
        assert!((stable(&p) - 1.1111).abs() < 0.001);
        let p = ModelParams::typical().with_i(2e4);
        assert!((stable(&p) - 2.0).abs() < 0.001);
    }

    #[test]
    fn failure_rate_scales_nearly_linearly() {
        // Table 1: F = 0.001 → 10.10; F = 0.005 → 50.50.
        let p = ModelParams::typical().with_f(1e-3);
        assert!((stable(&p) - 10.101).abs() < 0.01);
        let p = ModelParams::typical().with_f(5e-3);
        assert!((stable(&p) - 50.505).abs() < 0.01);
    }

    #[test]
    fn slow_recovery_raises_population() {
        // Table 1: R = 0.0001 → 11.11.
        let p = ModelParams::typical().with_r(1e-4);
        assert!((stable(&p) - 11.111).abs() < 0.01);
    }

    #[test]
    fn y_one_removes_the_self_dependency_term() {
        // Table 1: Y = 1 → P = 1.00 exactly (UY cancels UD at D = 1).
        let p = ModelParams::typical().with_y(1.0);
        assert!((stable(&p) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dependency_fanin_amplifies() {
        // Table 1: D = 5 at I = 100,000 → P = 2.00.
        let p = ModelParams::typical().with_i(1e5).with_d(5.0);
        assert!((stable(&p) - 2.0).abs() < 0.001);
    }

    #[test]
    fn table_2_predictions() {
        // The "Predicted P" column of Table 2.
        let base = ModelParams {
            u: 2.0,
            f: 0.01,
            i: 1e4,
            r: 0.01,
            y: 0.0,
            d: 1.0,
        };
        assert!((stable(&base) - 2.0408).abs() < 0.001);
        assert!((stable(&base.with_u(5.0)) - 5.263).abs() < 0.001);
        assert!((stable(&base.with_u(10.0)) - 11.111).abs() < 0.001);
        assert!((stable(&base.with_u(10.0).with_f(0.001)) - 1.1111).abs() < 0.001);
        assert!((stable(&base.with_u(10.0).with_d(5.0)) - 20.0).abs() < 0.001);
        assert!((stable(&base.with_u(10.0).with_d(5.0).with_y(1.0)) - 16.667).abs() < 0.001);
    }

    #[test]
    fn unstable_region_detected() {
        // IR + UY − UD ≤ 0: e.g. massive fan-in.
        let p = ModelParams::typical().with_d(200.0).with_i(1e3);
        assert_eq!(steady_state(&p), Prediction::Unstable);
        assert!(decay_rate(&p) < 0.0);
        assert!(!prediction_in_validity_region(&p));
        assert_eq!(steady_state(&p).value(), None);
    }

    #[test]
    fn decay_rate_is_positive_when_stable() {
        let p = ModelParams::typical();
        assert!(decay_rate(&p) > 0.0);
        // λ·P∞ = UF at equilibrium.
        let lambda = decay_rate(&p);
        let pinf = stable(&p);
        assert!((lambda * pinf - p.u * p.f).abs() < 1e-9);
    }

    #[test]
    fn validity_region() {
        assert!(prediction_in_validity_region(&ModelParams::typical()));
        // Tiny database, huge failure rate → P comparable to I.
        let bad = ModelParams {
            u: 100.0,
            f: 0.5,
            i: 100.0,
            r: 0.01,
            y: 0.0,
            d: 0.0,
        };
        assert!(!prediction_in_validity_region(&bad));
    }
}
