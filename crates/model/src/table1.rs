//! Table 1 of the paper: model predictions for a one-at-a-time parameter
//! sweep around the typical database.
//!
//! The archival scan of Table 1 is partially garbled; the rows here are
//! reconstructed from the closed form `P = UFI/(IR + UY − UD)` so that every
//! legible `P` value in the scan (1.01, 11.11, 1.11, 2.00, 1.00, 2.00,
//! 10.10, 50.50, 11.11) is reproduced exactly, following the caption's rule
//! that "the remaining table entries show how varying each of the parameters
//! individually affects the predicted number of polyvalues".

use crate::params::ModelParams;
use crate::steady::{steady_state, Prediction};
use std::fmt::Write as _;

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// What is varied relative to the typical parameters.
    pub label: &'static str,
    /// The parameters of this row.
    pub params: ModelParams,
    /// The `P` value as printed in the paper (2 decimal places).
    pub paper_p: f64,
}

impl Table1Row {
    /// The model's prediction for this row.
    pub fn predicted(&self) -> f64 {
        match steady_state(&self.params) {
            Prediction::Stable(p) => p,
            Prediction::Unstable => f64::INFINITY,
        }
    }
}

/// The reconstructed rows of Table 1.
pub fn rows() -> Vec<Table1Row> {
    let t = ModelParams::typical();
    vec![
        Table1Row {
            label: "typical",
            params: t,
            paper_p: 1.01,
        },
        Table1Row {
            label: "U = 100",
            params: t.with_u(100.0),
            paper_p: 11.11,
        },
        Table1Row {
            label: "I = 100,000",
            params: t.with_i(1e5),
            paper_p: 1.11,
        },
        Table1Row {
            label: "I = 20,000",
            params: t.with_i(2e4),
            paper_p: 2.00,
        },
        Table1Row {
            label: "F = 0.001",
            params: t.with_f(1e-3),
            paper_p: 10.10,
        },
        Table1Row {
            label: "F = 0.005",
            params: t.with_f(5e-3),
            paper_p: 50.50,
        },
        Table1Row {
            label: "R = 0.0001",
            params: t.with_r(1e-4),
            paper_p: 11.11,
        },
        Table1Row {
            label: "Y = 1",
            params: t.with_y(1.0),
            paper_p: 1.00,
        },
        Table1Row {
            label: "D = 5 (I = 100,000)",
            params: t.with_i(1e5).with_d(5.0),
            paper_p: 2.00,
        },
        Table1Row {
            label: "D = 10",
            params: t.with_d(10.0),
            paper_p: 1.11,
        },
    ]
}

/// Renders the table in the paper's layout (parameters, then `P`).
pub fn render() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Table 1: Typical Predictions of the Number of Polyvalues in a Database"
    )
    .unwrap();
    writeln!(
        out,
        "{:<22} {:>6} {:>8} {:>11} {:>8} {:>4} {:>4} | {:>9} {:>8}",
        "row", "U", "F", "I", "R", "Y", "D", "P (model)", "P(paper)"
    )
    .unwrap();
    for row in rows() {
        let p = row.params;
        writeln!(
            out,
            "{:<22} {:>6} {:>8} {:>11} {:>8} {:>4} {:>4} | {:>9.2} {:>8.2}",
            row.label,
            p.u,
            p.f,
            p.i,
            p.r,
            p.y,
            p.d,
            row.predicted(),
            row.paper_p
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_reproduces_the_paper_to_two_decimals() {
        for row in rows() {
            let predicted = (row.predicted() * 100.0).round() / 100.0;
            // 0.011 tolerance: the paper truncates 50.505 to 50.50 where
            // round-half-up gives 50.51.
            assert!(
                (predicted - row.paper_p).abs() < 0.011,
                "{}: predicted {predicted} vs paper {}",
                row.label,
                row.paper_p
            );
        }
    }

    #[test]
    fn rows_vary_one_axis_at_a_time() {
        let t = ModelParams::typical();
        for row in rows().iter().skip(1) {
            let p = row.params;
            let diffs = [
                p.u != t.u,
                p.f != t.f,
                p.i != t.i,
                p.r != t.r,
                p.y != t.y,
                p.d != t.d,
            ]
            .iter()
            .filter(|&&x| x)
            .count();
            assert!(
                (1..=2).contains(&diffs),
                "{} should vary 1 axis (2 for the D sweep at smaller I)",
                row.label
            );
        }
    }

    #[test]
    fn render_contains_header_and_all_rows() {
        let s = render();
        assert!(s.contains("Table 1"));
        for row in rows() {
            assert!(s.contains(row.label), "missing {}", row.label);
        }
        assert!(s.contains("1.01"));
        assert!(s.contains("50.50"));
    }

    #[test]
    fn all_rows_are_in_the_validity_region() {
        for row in rows() {
            assert!(
                crate::steady::prediction_in_validity_region(&row.params),
                "{} outside validity region",
                row.label
            );
        }
    }
}
