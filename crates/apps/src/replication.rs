//! Replicated items (§3 of the paper).
//!
//! "An item that is replicated at several sites can be viewed as a set of
//! individual items, one for each site." A write-all transaction updates
//! every copy atomically (the engine's atomicity makes the copies
//! indistinguishable from one logical item), while reads go to any single
//! copy — so the failure of one copy's site leaves readers at the others
//! untouched, and an in-doubt write leaves each copy with the *same*
//! polyvalue, which collapses identically everywhere on recovery.

use pv_core::{Entry, Expr, ItemId, TransactionSpec, Value};
use pv_engine::Cluster;

/// A logical item stored as one physical copy per site.
#[derive(Debug, Clone)]
pub struct Replicated {
    copies: Vec<ItemId>,
}

impl Replicated {
    /// Declares a replicated item over the given physical copies. The first
    /// copy is the *primary*: read-modify-write transactions compute the new
    /// value from it (under 2PL all copies are equal anyway).
    pub fn new(copies: Vec<ItemId>) -> Self {
        assert!(
            !copies.is_empty(),
            "a replicated item needs at least one copy"
        );
        Replicated { copies }
    }

    /// The physical copies.
    pub fn copies(&self) -> &[ItemId] {
        &self.copies
    }

    /// The primary copy.
    pub fn primary(&self) -> ItemId {
        self.copies[0]
    }

    /// Replication factor.
    pub fn factor(&self) -> usize {
        self.copies.len()
    }

    /// A write-all transaction: every copy takes the value `f(read(primary))`.
    ///
    /// The closure builds the update expression from the primary's current
    /// value, e.g. `|v| v.add(Expr::int(1))` for a replicated counter.
    pub fn update_all(&self, f: impl FnOnce(Expr) -> Expr) -> TransactionSpec {
        let new_value = f(Expr::read(self.primary()));
        let mut spec = TransactionSpec::new();
        for &copy in &self.copies {
            spec = spec.update(copy, new_value.clone());
        }
        spec
    }

    /// A guarded write-all: updates apply only if `guard(read(primary))`.
    pub fn update_all_if(
        &self,
        guard: impl FnOnce(Expr) -> Expr,
        f: impl FnOnce(Expr) -> Expr,
    ) -> TransactionSpec {
        self.update_all(f)
            .guard(guard(Expr::read(self.primary())))
            .output("granted", Expr::bool(true))
    }

    /// A read of one specific copy (by index), as a read-only transaction.
    /// Readers pick the copy whose site is reachable — that choice is the
    /// whole point of replication.
    pub fn read_copy(&self, idx: usize) -> TransactionSpec {
        TransactionSpec::new().output("value", Expr::read(self.copies[idx]))
    }

    /// An audit transaction reading every copy and reporting whether they
    /// agree (they always do under the engine's atomicity — polyvalues
    /// included, since in-doubt write-alls leave the *same* uncertainty on
    /// every copy).
    pub fn audit(&self) -> TransactionSpec {
        let mut agree = Expr::bool(true);
        for &copy in &self.copies[1..] {
            agree = agree.and(Expr::read(copy).eq_v(Expr::read(self.primary())));
        }
        TransactionSpec::new()
            .output("consistent", agree)
            .output("value", Expr::read(self.primary()))
    }

    /// Fetches every copy's current entry from a settled cluster.
    pub fn entries(&self, cluster: &Cluster) -> Vec<Entry<Value>> {
        self.copies
            .iter()
            .map(|&c| {
                cluster
                    .item_entry(c)
                    .unwrap_or_else(|e| panic!("copy {c}: {e}"))
            })
            .collect()
    }

    /// Asserts that all copies hold identical entries (valid at any time:
    /// uncertainty from an in-doubt write-all is itself identical).
    pub fn assert_copies_agree(&self, cluster: &Cluster) {
        let entries = self.entries(cluster);
        for (i, e) in entries.iter().enumerate().skip(1) {
            assert_eq!(e, &entries[0], "copy {i} diverged: {} vs {}", e, entries[0]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_engine::{
        ClientConfig, ClusterBuilder, CommitProtocol, Directory, EngineConfig, Msg, Script,
    };
    use pv_simnet::{NetConfig, NodeId, SimDuration, SimTime};

    /// Item `i` lives at site `i` (3 sites, one copy each).
    fn replicated_cluster() -> (Replicated, pv_engine::Cluster) {
        let rep = Replicated::new(vec![ItemId(0), ItemId(1), ItemId(2)]);
        let cluster = ClusterBuilder::new(3, Directory::Mod(3))
            .seed(13)
            .net(NetConfig::instant())
            .engine(EngineConfig::with_protocol(CommitProtocol::Polyvalue))
            .uniform_items(3, 100)
            .client(
                ClientConfig {
                    max_retries: 0,
                    ..ClientConfig::default()
                },
                Box::new(Script::new(vec![], SimDuration::from_millis(1))),
            )
            .build();
        (rep, cluster)
    }

    #[test]
    fn constructor_and_accessors() {
        let rep = Replicated::new(vec![ItemId(5), ItemId(9)]);
        assert_eq!(rep.primary(), ItemId(5));
        assert_eq!(rep.factor(), 2);
        assert_eq!(rep.copies(), &[ItemId(5), ItemId(9)]);
    }

    #[test]
    #[should_panic(expected = "at least one copy")]
    fn empty_replication_rejected() {
        let _ = Replicated::new(vec![]);
    }

    #[test]
    fn spec_shapes() {
        let rep = Replicated::new(vec![ItemId(0), ItemId(1)]);
        let w = rep.update_all(|v| v.add(Expr::int(1)));
        assert_eq!(w.write_set().len(), 2);
        let g = rep.update_all_if(|v| v.gt(Expr::int(0)), |v| v.sub(Expr::int(1)));
        assert!(g.guard.is_some());
        assert!(rep.read_copy(1).is_read_only());
        assert!(rep.audit().is_read_only());
    }

    #[test]
    fn write_all_keeps_copies_identical() {
        let (rep, mut cluster) = replicated_cluster();
        let spec = rep.update_all(|v| v.add(Expr::int(5)));
        cluster
            .world
            .send_from_env(NodeId(0), Msg::Submit { req_id: 1, spec });
        cluster.run_until(SimTime::from_secs(1));
        rep.assert_copies_agree(&cluster);
        assert_eq!(rep.entries(&cluster)[0], Entry::Simple(Value::Int(105)));
    }

    #[test]
    fn in_doubt_write_all_leaves_identical_uncertainty_then_converges() {
        let (rep, mut cluster) = replicated_cluster();
        // Write-all coordinated at site 0; cut 0↔1 and 0↔2 right after the
        // decision so copies 1 and 2 are left in doubt.
        let spec = rep.update_all(|v| v.add(Expr::int(7)));
        cluster
            .world
            .send_from_env(NodeId(0), Msg::Submit { req_id: 1, spec });
        let mut guard = 0;
        while cluster.world.metrics().counter("txn.committed") < 1 {
            let t = SimTime(cluster.world.now().as_micros() + 1);
            cluster.run_until(t);
            guard += 1;
            assert!(guard < 1_000_000);
        }
        let now = cluster.world.now();
        cluster.world.schedule_partition(now, NodeId(0), NodeId(1));
        cluster.world.schedule_partition(now, NodeId(0), NodeId(2));
        cluster.run_until(now + SimDuration::from_secs(1));
        // Copies 1 and 2 hold the *same* polyvalue; copy 0 already settled.
        let entries = rep.entries(&cluster);
        assert_eq!(entries[0], Entry::Simple(Value::Int(107)));
        assert!(entries[1].is_poly());
        assert_eq!(entries[1], entries[2], "uncertainty must be identical");
        // A reader at site 1 can still read its copy (polyvalued), and a
        // reader needing certainty reads copy 0 at the healthy site.
        // After healing, everything converges to 107 everywhere.
        let now = cluster.world.now();
        cluster.world.schedule_heal(now, NodeId(0), NodeId(1));
        cluster.world.schedule_heal(now, NodeId(0), NodeId(2));
        cluster.run_until(now + SimDuration::from_secs(5));
        rep.assert_copies_agree(&cluster);
        assert_eq!(rep.entries(&cluster)[0], Entry::Simple(Value::Int(107)));
        assert_eq!(cluster.total_poly_count(), 0);
    }

    #[test]
    fn audit_reports_consistency() {
        let (rep, mut cluster) = replicated_cluster();
        cluster.world.send_from_env(
            NodeId(0),
            Msg::Submit {
                req_id: 1,
                spec: rep.audit(),
            },
        );
        cluster.run_until(SimTime::from_secs(1));
        // The reply went to the environment, but the commit implies the
        // audit evaluated; verify directly instead via the evaluator.
        use pv_core::expr::{evaluate, SplitMode};
        let mut db = std::collections::BTreeMap::new();
        for (idx, e) in rep.entries(&cluster).into_iter().enumerate() {
            db.insert(ItemId(idx as u64), e);
        }
        let out = evaluate(&rep.audit(), &db, SplitMode::Lazy).unwrap();
        let outputs = out.collate_outputs().unwrap();
        assert_eq!(outputs[0].1, Entry::Simple(Value::Bool(true)));
    }

    #[test]
    fn guarded_replicated_counter_never_goes_negative() {
        let (rep, mut cluster) = replicated_cluster();
        // 100 initial; 12 guarded decrements of 10 → exactly 10 succeed.
        for k in 0..12u64 {
            let spec = rep.update_all_if(|v| v.ge(Expr::int(10)), |v| v.sub(Expr::int(10)));
            cluster
                .world
                .send_from_env(NodeId(0), Msg::Submit { req_id: k, spec });
            cluster.run_until(cluster.world.now() + SimDuration::from_millis(100));
        }
        cluster.run_until(cluster.world.now() + SimDuration::from_secs(1));
        rep.assert_copies_agree(&cluster);
        assert_eq!(rep.entries(&cluster)[0], Entry::Simple(Value::Int(0)));
    }
}
