//! Electronic funds transfer / credit authorization (§5 of the paper).
//!
//! "The important transactions … depend very loosely on the state of the
//! database in that the important effect (distribution of funds or goods)
//! depends only on the fact that the relevant accounts contain enough funds,
//! not on exactly how much."

use pv_core::{Entry, Expr, ItemId, TransactionSpec, Value};
use pv_engine::{Cluster, ClusterBuilder, Directory};

/// A bank of `accounts` accounts, account `a` stored as item `a`.
#[derive(Debug, Clone, Copy)]
pub struct FundsApp {
    /// Number of accounts.
    pub accounts: u64,
    /// Initial balance of every account (cents).
    pub initial: i64,
}

impl FundsApp {
    /// Creates the application descriptor.
    pub fn new(accounts: u64, initial: i64) -> Self {
        assert!(accounts >= 1 && initial >= 0);
        FundsApp { accounts, initial }
    }

    /// The item holding account `a`.
    pub fn account(&self, a: u64) -> ItemId {
        assert!(a < self.accounts, "no such account");
        ItemId(a)
    }

    /// Seeds a cluster builder with every account.
    pub fn seed(&self, builder: ClusterBuilder) -> ClusterBuilder {
        builder.uniform_items(self.accounts, self.initial)
    }

    /// A directory spreading accounts round-robin over `sites` sites.
    pub fn directory(sites: u32) -> Directory {
        Directory::Mod(sites)
    }

    /// Transfer `amount` from `from` to `to`, guarded by sufficient funds.
    pub fn transfer(&self, from: u64, to: u64, amount: i64) -> TransactionSpec {
        assert!(from != to, "transfer needs distinct accounts");
        assert!(amount > 0);
        let (f, t) = (self.account(from), self.account(to));
        TransactionSpec::new()
            .guard(Expr::read(f).ge(Expr::int(amount)))
            .update(f, Expr::read(f).sub(Expr::int(amount)))
            .update(t, Expr::read(t).add(Expr::int(amount)))
            .output("granted", Expr::read(f).ge(Expr::int(amount)))
    }

    /// Deposit `amount` into `into` (always granted).
    pub fn deposit(&self, into: u64, amount: i64) -> TransactionSpec {
        assert!(amount > 0);
        let t = self.account(into);
        TransactionSpec::new().update(t, Expr::read(t).add(Expr::int(amount)))
    }

    /// Withdraw `amount` from `from`, guarded by sufficient funds.
    pub fn withdraw(&self, from: u64, amount: i64) -> TransactionSpec {
        assert!(amount > 0);
        let f = self.account(from);
        TransactionSpec::new()
            .guard(Expr::read(f).ge(Expr::int(amount)))
            .update(f, Expr::read(f).sub(Expr::int(amount)))
            .output("granted", Expr::read(f).ge(Expr::int(amount)))
    }

    /// Credit authorization: *read-only* check that the account covers
    /// `amount`. On a polyvalued balance this still answers with a simple
    /// yes whenever every possible balance suffices — the paper's flagship
    /// use case.
    pub fn authorize(&self, account: u64, amount: i64) -> TransactionSpec {
        let a = self.account(account);
        TransactionSpec::new().output("authorized", Expr::read(a).ge(Expr::int(amount)))
    }

    /// Balance inquiry (may return an uncertain balance, per §3.4).
    pub fn balance(&self, account: u64) -> TransactionSpec {
        TransactionSpec::new().output("balance", Expr::read(self.account(account)))
    }

    /// Total funds currently in the bank; panics if any balance is missing
    /// or still uncertain (call after the cluster settles).
    pub fn total(&self, cluster: &Cluster) -> i64 {
        cluster
            .sum_items((0..self.accounts).map(ItemId))
            .expect("every balance settled")
    }

    /// The invariant the mechanism must preserve across any run made purely
    /// of transfers: conservation of money.
    pub fn expected_total(&self) -> i64 {
        self.accounts as i64 * self.initial
    }

    /// Interprets an `authorized`/`granted` output entry conservatively:
    /// approve only when *every* alternative approves.
    pub fn conservative_approval(entry: &Entry<Value>) -> bool {
        entry == &Entry::Simple(Value::Bool(true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_core::TxnId;
    use pv_engine::{ClientConfig, CommitProtocol, EngineConfig, Script};
    use pv_simnet::{NetConfig, SimDuration, SimTime};

    #[test]
    fn spec_constructors_shape() {
        let app = FundsApp::new(4, 100);
        let t = app.transfer(0, 1, 10);
        assert_eq!(t.write_set().len(), 2);
        assert!(t.guard.is_some());
        let d = app.deposit(2, 5);
        assert_eq!(d.write_set().len(), 1);
        assert!(d.guard.is_none());
        let w = app.withdraw(3, 5);
        assert_eq!(w.write_set().len(), 1);
        let a = app.authorize(0, 50);
        assert!(a.is_read_only());
        assert!(app.balance(0).is_read_only());
        assert_eq!(app.expected_total(), 400);
    }

    #[test]
    #[should_panic(expected = "distinct accounts")]
    fn self_transfer_rejected() {
        FundsApp::new(2, 100).transfer(1, 1, 5);
    }

    #[test]
    #[should_panic(expected = "no such account")]
    fn out_of_range_account_rejected() {
        FundsApp::new(2, 100).account(2);
    }

    #[test]
    fn conservative_approval_requires_certainty() {
        assert!(FundsApp::conservative_approval(&Entry::Simple(
            Value::Bool(true)
        )));
        assert!(!FundsApp::conservative_approval(&Entry::Simple(
            Value::Bool(false)
        )));
        let uncertain = Entry::in_doubt(
            Entry::Simple(Value::Bool(true)),
            Entry::Simple(Value::Bool(false)),
            TxnId(1),
        );
        assert!(!FundsApp::conservative_approval(&uncertain));
    }

    #[test]
    fn end_to_end_banking_day() {
        let app = FundsApp::new(6, 100);
        let specs = vec![
            app.transfer(0, 1, 30),
            app.deposit(2, 50),
            app.withdraw(3, 40),
            app.authorize(1, 100),
            app.transfer(4, 5, 200), // denied: insufficient funds
            app.balance(0),
        ];
        let builder = ClusterBuilder::new(3, FundsApp::directory(3))
            .seed(5)
            .net(NetConfig::instant())
            .engine(EngineConfig::with_protocol(CommitProtocol::Polyvalue));
        let mut cluster = app
            .seed(builder)
            .client(
                ClientConfig::default(),
                Box::new(Script::new(specs, SimDuration::from_millis(5))),
            )
            .build();
        cluster.run_until(SimTime::from_secs(3));
        assert_eq!(
            cluster.item_entry(ItemId(0)),
            Ok(Entry::Simple(Value::Int(70)))
        );
        assert_eq!(
            cluster.item_entry(ItemId(1)),
            Ok(Entry::Simple(Value::Int(130)))
        );
        assert_eq!(
            cluster.item_entry(ItemId(2)),
            Ok(Entry::Simple(Value::Int(150)))
        );
        assert_eq!(
            cluster.item_entry(ItemId(3)),
            Ok(Entry::Simple(Value::Int(60)))
        );
        // Denied transfer left 4 and 5 untouched.
        assert_eq!(
            cluster.item_entry(ItemId(4)),
            Ok(Entry::Simple(Value::Int(100)))
        );
        assert_eq!(app.total(&cluster), app.expected_total() + 50 - 40);
        let results = cluster.client(0).unwrap().results();
        assert_eq!(results.len(), 6);
        // The authorization for exactly 100 against account 1 (130 by then,
        // or 100 if it ran first — either way it covers 100).
        let auth = &results[3].1;
        assert!(auth.is_committed());
        assert!(cluster.all_quiescent());
    }
}
