//! # pv-apps — the §5 application studies
//!
//! The paper motivates polyvalues with applications whose "important results
//! depend only loosely on the values of the data items": electronic funds
//! transfer / credit authorization ([`FundsApp`]), reservations
//! ([`ReservationsApp`]), and inventory / process control
//! ([`InventoryApp`]). Each module provides the item layout, transaction
//! spec constructors, a workload generator, and the safety invariants the
//! engine must preserve.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod funds;
mod inventory;
mod replication;
mod reservations;

pub use funds::FundsApp;
pub use inventory::{InventoryApp, ProductionTraffic};
pub use replication::Replicated;
pub use reservations::{Decision, ReservationTraffic, ReservationsApp};
