//! Inventory / process control (§5 of the paper).
//!
//! "Such applications as inventory or process control also seem ideal
//! candidates for the polyvalue mechanism. Again, real time operation is
//! important; however, the exact values of the items in the database are
//! frequently not needed for the important real time effects."
//!
//! Item `p` holds the stock level of part `p`. Consumption and restocking
//! update it; the real-time decision is the *reorder alert*, which only asks
//! whether stock is below a threshold — loosely dependent on the exact level.

use pv_core::{Entry, Expr, ItemId, TransactionSpec, Value};
use pv_engine::{Cluster, ClusterBuilder, Directory, Workload};
use pv_simnet::{SimDuration, SimRng};

/// An inventory of `parts` parts.
#[derive(Debug, Clone, Copy)]
pub struct InventoryApp {
    /// Number of part kinds.
    pub parts: u64,
    /// Initial stock per part.
    pub initial: i64,
    /// Reorder threshold: alert when stock drops below this.
    pub reorder_below: i64,
}

impl InventoryApp {
    /// Creates the application descriptor.
    pub fn new(parts: u64, initial: i64, reorder_below: i64) -> Self {
        assert!(parts >= 1 && initial >= 0 && reorder_below >= 0);
        InventoryApp {
            parts,
            initial,
            reorder_below,
        }
    }

    /// The item holding part `p`'s stock level.
    pub fn part(&self, p: u64) -> ItemId {
        assert!(p < self.parts, "no such part");
        ItemId(p)
    }

    /// Seeds a cluster builder with every part at the initial stock.
    pub fn seed(&self, builder: ClusterBuilder) -> ClusterBuilder {
        builder.uniform_items(self.parts, self.initial)
    }

    /// A directory spreading parts round-robin over `sites` sites.
    pub fn directory(sites: u32) -> Directory {
        Directory::Mod(sites)
    }

    /// Consume `qty` units of part `p` (a production step), guarded by
    /// availability, and report whether a reorder is now due — the
    /// real-time output that usually stays certain even over uncertain
    /// stock levels.
    pub fn consume(&self, p: u64, qty: i64) -> TransactionSpec {
        assert!(qty > 0);
        let item = self.part(p);
        TransactionSpec::new()
            .guard(Expr::read(item).ge(Expr::int(qty)))
            .update(item, Expr::read(item).sub(Expr::int(qty)))
            .output(
                "reorder",
                Expr::ite(
                    Expr::read(item).ge(Expr::int(qty)),
                    Expr::read(item)
                        .sub(Expr::int(qty))
                        .lt(Expr::int(self.reorder_below)),
                    Expr::read(item).lt(Expr::int(self.reorder_below)),
                ),
            )
    }

    /// Restock `qty` units of part `p`.
    pub fn restock(&self, p: u64, qty: i64) -> TransactionSpec {
        assert!(qty > 0);
        let item = self.part(p);
        TransactionSpec::new().update(item, Expr::read(item).add(Expr::int(qty)))
    }

    /// Read-only reorder check.
    pub fn reorder_due(&self, p: u64) -> TransactionSpec {
        let item = self.part(p);
        TransactionSpec::new().output(
            "reorder",
            Expr::read(item).lt(Expr::int(self.reorder_below)),
        )
    }

    /// Checks stock never went negative; panics on violation or residual
    /// uncertainty.
    pub fn assert_stock_sane(&self, cluster: &Cluster) {
        for p in 0..self.parts {
            let entry = cluster
                .item_entry(self.part(p))
                .unwrap_or_else(|e| panic!("part {p}: {e}"));
            match entry {
                Entry::Simple(Value::Int(n)) => {
                    assert!(n >= 0, "part {p} stock went negative: {n}");
                }
                other => panic!("part {p} unsettled: {other}"),
            }
        }
    }
}

/// Mixed consume/restock traffic (a production line with deliveries).
#[derive(Debug, Clone)]
pub struct ProductionTraffic {
    app: InventoryApp,
    rate_per_sec: f64,
    restock_prob: f64,
    max_qty: i64,
    remaining: u64,
}

impl ProductionTraffic {
    /// `limit` operations at `rate_per_sec`; each is a restock with
    /// probability `restock_prob`, else a consume, of `1..=max_qty` units.
    pub fn new(
        app: InventoryApp,
        rate_per_sec: f64,
        restock_prob: f64,
        max_qty: i64,
        limit: u64,
    ) -> Self {
        assert!(rate_per_sec > 0.0 && (0.0..=1.0).contains(&restock_prob) && max_qty >= 1);
        ProductionTraffic {
            app,
            rate_per_sec,
            restock_prob,
            max_qty,
            remaining: limit,
        }
    }
}

impl Workload for ProductionTraffic {
    fn next(&mut self, rng: &mut SimRng) -> Option<(TransactionSpec, SimDuration)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let p = rng.below(self.app.parts);
        let qty = 1 + rng.below(self.max_qty as u64) as i64;
        let spec = if rng.chance(self.restock_prob) {
            self.app.restock(p, qty)
        } else {
            self.app.consume(p, qty)
        };
        let gap = SimDuration::from_secs_f64(rng.exponential(1.0 / self.rate_per_sec));
        Some((spec, gap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_engine::{ClientConfig, CommitProtocol, EngineConfig, Script, TxnResult};
    use pv_simnet::{NetConfig, SimTime};

    #[test]
    fn spec_shapes() {
        let app = InventoryApp::new(4, 100, 20);
        let c = app.consume(0, 5);
        assert!(c.guard.is_some());
        assert_eq!(c.write_set().len(), 1);
        let r = app.restock(1, 5);
        assert!(r.guard.is_none());
        assert!(app.reorder_due(2).is_read_only());
    }

    #[test]
    #[should_panic(expected = "no such part")]
    fn out_of_range_part_rejected() {
        InventoryApp::new(2, 10, 1).part(3);
    }

    #[test]
    fn production_day_keeps_stock_sane_and_alerts() {
        let app = InventoryApp::new(2, 30, 25);
        let specs = vec![
            app.consume(0, 10), // 20 left → reorder alert (20 < 25)
            app.restock(0, 50), // 70
            app.consume(0, 10), // 60, no alert
            app.consume(1, 40), // denied: only 30 in stock
            app.reorder_due(1),
        ];
        let builder = ClusterBuilder::new(2, InventoryApp::directory(2))
            .seed(9)
            .net(NetConfig::instant())
            .engine(EngineConfig::with_protocol(CommitProtocol::Polyvalue));
        let mut cluster = app
            .seed(builder)
            .client(
                ClientConfig::default(),
                Box::new(Script::new(specs, SimDuration::from_millis(5))),
            )
            .build();
        cluster.run_until(SimTime::from_secs(3));
        assert_eq!(
            cluster.item_entry(ItemId(0)),
            Ok(Entry::Simple(Value::Int(60)))
        );
        assert_eq!(
            cluster.item_entry(ItemId(1)),
            Ok(Entry::Simple(Value::Int(30)))
        );
        app.assert_stock_sane(&cluster);
        let results = cluster.client(0).unwrap().results();
        let reorder_of = |idx: usize| match &results[idx].1 {
            TxnResult::Committed { outputs, .. } => outputs[0].1.clone(),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(reorder_of(0), Entry::Simple(Value::Bool(true)));
        assert_eq!(reorder_of(2), Entry::Simple(Value::Bool(false)));
        assert!(
            !results[3].1.fully_granted(),
            "over-consumption must be denied"
        );
    }

    #[test]
    fn traffic_generator_is_well_formed() {
        let app = InventoryApp::new(3, 100, 10);
        let mut w = ProductionTraffic::new(app, 5.0, 0.4, 8, 30);
        let mut rng = SimRng::new(2);
        let mut n = 0;
        while let Some((spec, _)) = w.next(&mut rng) {
            assert_eq!(spec.write_set().len(), 1);
            n += 1;
        }
        assert_eq!(n, 30);
    }
}
