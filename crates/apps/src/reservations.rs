//! A reservations system (§5 of the paper).
//!
//! "If the number of reservations granted is a polyvalue, then a new
//! reservation can be granted so long as the largest value in that polyvalue
//! is less than the number of available rooms or seats. … All alternative
//! transactions of such a polytransaction will decide to grant the
//! reservation."
//!
//! Item `f` holds the number of seats already booked on flight `f`; the
//! reserve transaction's guard `booked < capacity` encodes exactly the
//! largest-value rule: it is certainly true iff the largest possible booked
//! count is below capacity.

use pv_core::{Entry, Expr, ItemId, TransactionSpec, Value};
use pv_engine::{Cluster, ClusterBuilder, Directory, Workload};
use pv_simnet::{SimDuration, SimRng};

/// How a reservation request was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Granted in every alternative: the customer gets the seat.
    Granted,
    /// Denied in every alternative: the flight is certainly full.
    Denied,
    /// The answer depends on an in-doubt transaction. Policy decides whether
    /// to present this to the agent (§3.4) or treat it as a denial.
    Uncertain,
}

impl Decision {
    /// Classifies a collated `granted` output entry.
    pub fn from_entry(entry: &Entry<Value>) -> Decision {
        match entry {
            Entry::Simple(Value::Bool(true)) => Decision::Granted,
            Entry::Simple(Value::Bool(false)) => Decision::Denied,
            _ => Decision::Uncertain,
        }
    }
}

/// A reservation system over `flights` flights with uniform seat capacity.
#[derive(Debug, Clone, Copy)]
pub struct ReservationsApp {
    /// Number of flights.
    pub flights: u64,
    /// Seats per flight.
    pub capacity: i64,
}

impl ReservationsApp {
    /// Creates the application descriptor.
    pub fn new(flights: u64, capacity: i64) -> Self {
        assert!(flights >= 1 && capacity >= 1);
        ReservationsApp { flights, capacity }
    }

    /// The item holding flight `f`'s booked count.
    pub fn flight(&self, f: u64) -> ItemId {
        assert!(f < self.flights, "no such flight");
        ItemId(f)
    }

    /// Seeds a cluster builder with every flight at zero bookings.
    pub fn seed(&self, builder: ClusterBuilder) -> ClusterBuilder {
        builder.uniform_items(self.flights, 0)
    }

    /// A directory spreading flights round-robin over `sites` sites.
    pub fn directory(sites: u32) -> Directory {
        Directory::Mod(sites)
    }

    /// Reserve one seat on flight `f` if any remain.
    pub fn reserve(&self, f: u64) -> TransactionSpec {
        let item = self.flight(f);
        TransactionSpec::new()
            .guard(Expr::read(item).lt(Expr::int(self.capacity)))
            .update(item, Expr::read(item).add(Expr::int(1)))
            .output("granted", Expr::read(item).lt(Expr::int(self.capacity)))
    }

    /// Cancel one reservation on flight `f` if any exist.
    pub fn cancel(&self, f: u64) -> TransactionSpec {
        let item = self.flight(f);
        TransactionSpec::new()
            .guard(Expr::read(item).gt(Expr::int(0)))
            .update(item, Expr::read(item).sub(Expr::int(1)))
            .output("granted", Expr::read(item).gt(Expr::int(0)))
    }

    /// Seats remaining on flight `f` (may be uncertain, which "would not
    /// bother a ticket agent" per §3.4).
    pub fn seats_left(&self, f: u64) -> TransactionSpec {
        let item = self.flight(f);
        TransactionSpec::new().output("left", Expr::int(self.capacity).sub(Expr::read(item)))
    }

    /// Checks the safety invariant `0 ≤ booked ≤ capacity` on every settled
    /// flight; panics on violation or residual uncertainty.
    pub fn assert_no_overbooking(&self, cluster: &Cluster) {
        for f in 0..self.flights {
            let entry = cluster
                .item_entry(self.flight(f))
                .unwrap_or_else(|e| panic!("flight {f}: {e}"));
            match entry {
                Entry::Simple(Value::Int(n)) => {
                    assert!(
                        (0..=self.capacity).contains(&n),
                        "flight {f} booked {n} outside [0, {}]",
                        self.capacity
                    );
                }
                other => panic!("flight {f} unsettled: {other}"),
            }
        }
    }
}

/// Random reserve/cancel traffic over the flights.
#[derive(Debug, Clone)]
pub struct ReservationTraffic {
    app: ReservationsApp,
    rate_per_sec: f64,
    cancel_prob: f64,
    remaining: u64,
}

impl ReservationTraffic {
    /// `limit` requests at `rate_per_sec`, cancelling with `cancel_prob`.
    pub fn new(app: ReservationsApp, rate_per_sec: f64, cancel_prob: f64, limit: u64) -> Self {
        assert!(rate_per_sec > 0.0 && (0.0..=1.0).contains(&cancel_prob));
        ReservationTraffic {
            app,
            rate_per_sec,
            cancel_prob,
            remaining: limit,
        }
    }
}

impl Workload for ReservationTraffic {
    fn next(&mut self, rng: &mut SimRng) -> Option<(TransactionSpec, SimDuration)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let f = rng.below(self.app.flights);
        let spec = if rng.chance(self.cancel_prob) {
            self.app.cancel(f)
        } else {
            self.app.reserve(f)
        };
        let gap = SimDuration::from_secs_f64(rng.exponential(1.0 / self.rate_per_sec));
        Some((spec, gap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_core::TxnId;
    use pv_engine::{ClientConfig, CommitProtocol, EngineConfig, Script};
    use pv_simnet::{NetConfig, SimTime};

    #[test]
    fn decision_classification() {
        assert_eq!(
            Decision::from_entry(&Entry::Simple(Value::Bool(true))),
            Decision::Granted
        );
        assert_eq!(
            Decision::from_entry(&Entry::Simple(Value::Bool(false))),
            Decision::Denied
        );
        let uncertain = Entry::in_doubt(
            Entry::Simple(Value::Bool(true)),
            Entry::Simple(Value::Bool(false)),
            TxnId(3),
        );
        assert_eq!(Decision::from_entry(&uncertain), Decision::Uncertain);
    }

    #[test]
    fn reserve_cancel_specs() {
        let app = ReservationsApp::new(3, 10);
        let r = app.reserve(1);
        assert_eq!(r.write_set().len(), 1);
        assert!(r.guard.is_some());
        let c = app.cancel(1);
        assert!(c.guard.is_some());
        assert!(app.seats_left(2).is_read_only());
    }

    #[test]
    #[should_panic(expected = "no such flight")]
    fn out_of_range_flight_rejected() {
        ReservationsApp::new(2, 10).flight(5);
    }

    #[test]
    fn overbooking_is_impossible_serially() {
        let app = ReservationsApp::new(1, 3);
        // Five reservations against three seats: exactly three grants.
        let specs = vec![app.reserve(0); 5];
        let builder = ClusterBuilder::new(2, ReservationsApp::directory(2))
            .seed(3)
            .net(NetConfig::instant())
            .engine(EngineConfig::with_protocol(CommitProtocol::Polyvalue));
        let mut cluster = app
            .seed(builder)
            .client(
                ClientConfig::default(),
                Box::new(Script::new(specs, SimDuration::from_millis(5))),
            )
            .build();
        cluster.run_until(SimTime::from_secs(3));
        assert_eq!(
            cluster.item_entry(ItemId(0)),
            Ok(Entry::Simple(Value::Int(3)))
        );
        app.assert_no_overbooking(&cluster);
        let granted = cluster
            .client(0)
            .unwrap()
            .results()
            .iter()
            .filter(|(_, r)| r.fully_granted())
            .count();
        assert_eq!(granted, 3);
        assert_eq!(cluster.world.metrics().counter("txn.denied"), 2);
    }

    #[test]
    fn traffic_generator_is_well_formed() {
        let app = ReservationsApp::new(5, 10);
        let mut w = ReservationTraffic::new(app, 10.0, 0.3, 50);
        let mut rng = SimRng::new(1);
        let mut n = 0;
        while let Some((spec, gap)) = w.next(&mut rng) {
            assert_eq!(spec.write_set().len(), 1);
            assert!(gap > SimDuration::ZERO);
            n += 1;
        }
        assert_eq!(n, 50);
    }
}
