//! Output analysis for steady-state simulation: batch means and
//! confidence intervals.
//!
//! The paper reports a single "Actual P" per run, "averaged … during a
//! stable period". Batch means is the standard way to quantify how stable
//! that average is: the post-warm-up samples are grouped into batches whose
//! means are approximately independent, giving a standard error and a
//! confidence half-width for the run's estimate.

/// A batch-means estimate of a steady-state mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchMeans {
    /// The grand mean over all batches.
    pub mean: f64,
    /// Standard error of the grand mean.
    pub std_error: f64,
    /// Half-width of the ~95 % confidence interval (t ≈ 2 for ≥ 10 batches).
    pub half_width_95: f64,
    /// Number of batches used.
    pub batches: usize,
    /// Samples per batch.
    pub batch_len: usize,
}

impl BatchMeans {
    /// Whether a hypothesised true mean is inside the 95 % interval.
    pub fn covers(&self, value: f64) -> bool {
        (value - self.mean).abs() <= self.half_width_95
    }

    /// Relative precision of the estimate (half-width / mean); `None` when
    /// the mean is zero.
    pub fn relative_precision(&self) -> Option<f64> {
        if self.mean == 0.0 {
            None
        } else {
            Some(self.half_width_95 / self.mean.abs())
        }
    }
}

/// Computes batch means over `samples` with `batches` equal batches
/// (trailing remainder samples are dropped). Returns `None` with fewer than
/// 2 batches' worth of data.
pub fn batch_means(samples: &[f64], batches: usize) -> Option<BatchMeans> {
    if batches < 2 || samples.len() < batches {
        return None;
    }
    let batch_len = samples.len() / batches;
    if batch_len == 0 {
        return None;
    }
    let means: Vec<f64> = (0..batches)
        .map(|b| {
            let chunk = &samples[b * batch_len..(b + 1) * batch_len];
            chunk.iter().sum::<f64>() / batch_len as f64
        })
        .collect();
    let grand = means.iter().sum::<f64>() / batches as f64;
    let var = means.iter().map(|m| (m - grand).powi(2)).sum::<f64>() / (batches - 1) as f64;
    let std_error = (var / batches as f64).sqrt();
    Some(BatchMeans {
        mean: grand,
        std_error,
        half_width_95: 2.0 * std_error,
        batches,
        batch_len,
    })
}

/// Estimates the lag-1 autocorrelation of a series (a warm-up/batch-size
/// diagnostic: strongly positive values mean batches are too small).
pub fn lag1_autocorrelation(samples: &[f64]) -> Option<f64> {
    if samples.len() < 3 {
        return None;
    }
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var: f64 = samples.iter().map(|x| (x - mean).powi(2)).sum();
    if var == 0.0 {
        return None;
    }
    let cov: f64 = samples
        .windows(2)
        .map(|w| (w[0] - mean) * (w[1] - mean))
        .sum();
    Some(cov / var)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_series_has_zero_error() {
        let samples = vec![5.0; 100];
        let bm = batch_means(&samples, 10).unwrap();
        assert_eq!(bm.mean, 5.0);
        assert_eq!(bm.std_error, 0.0);
        assert_eq!(bm.half_width_95, 0.0);
        assert_eq!(bm.batches, 10);
        assert_eq!(bm.batch_len, 10);
        assert!(bm.covers(5.0));
        assert!(!bm.covers(5.1));
        assert_eq!(bm.relative_precision(), Some(0.0));
    }

    #[test]
    fn alternating_series_mean_and_error() {
        // 0,10,0,10,… grand mean 5; batches of even length all have mean 5.
        let samples: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 0.0 } else { 10.0 })
            .collect();
        let bm = batch_means(&samples, 10).unwrap();
        assert!((bm.mean - 5.0).abs() < 1e-12);
        assert!(bm.std_error < 1e-12);
    }

    #[test]
    fn noisy_series_interval_covers_truth() {
        // Deterministic pseudo-noise around 7.
        let samples: Vec<f64> = (0..1000)
            .map(|i| 7.0 + ((i as f64 * 0.7391).sin() * 2.0))
            .collect();
        let bm = batch_means(&samples, 20).unwrap();
        assert!(bm.covers(7.0), "mean {} ± {}", bm.mean, bm.half_width_95);
        assert!(bm.half_width_95 < 1.0);
    }

    #[test]
    fn too_little_data_returns_none() {
        assert!(batch_means(&[], 10).is_none());
        assert!(batch_means(&[1.0, 2.0], 10).is_none());
        assert!(batch_means(&[1.0, 2.0, 3.0], 1).is_none());
    }

    #[test]
    fn zero_mean_has_no_relative_precision() {
        let samples = vec![0.0; 20];
        let bm = batch_means(&samples, 4).unwrap();
        assert_eq!(bm.relative_precision(), None);
    }

    #[test]
    fn lag1_detects_correlation_structure() {
        // A slow ramp is strongly positively autocorrelated.
        let ramp: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!(lag1_autocorrelation(&ramp).unwrap() > 0.9);
        // Perfect alternation is strongly negatively autocorrelated.
        let alt: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 0.0 } else { 1.0 })
            .collect();
        assert!(lag1_autocorrelation(&alt).unwrap() < -0.9);
        // Degenerate inputs.
        assert!(lag1_autocorrelation(&[1.0, 2.0]).is_none());
        assert!(lag1_autocorrelation(&[3.0; 50]).is_none());
    }
}
