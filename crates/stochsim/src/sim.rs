//! The §4.2 simulation proper.
//!
//! "The simulation maintained a description of the items of the database
//! having polyvalues, and the transactions on which those items depended."
//! Exactly that: the state is a map `item → {tags}` of in-doubt transaction
//! identifiers, plus a queue of pending recoveries. Transactions arrive at
//! rate `U`; each updates one uniformly random item whose new value depends
//! on `d ~ Exp(D)` random items, includes the previous value with
//! probability `1 − Y`, and fails with probability `F`, recovering after
//! `Exp(1/R)` seconds.

use crate::config::SimConfig;
use pv_simnet::SimRng;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// A tag: the identifier of an in-doubt transaction a polyvalue depends on.
type Tag = u64;

/// Pending recovery, ordered soonest-first in the heap.
#[derive(Debug, PartialEq)]
struct Recovery {
    at: f64,
    tag: Tag,
}

impl Eq for Recovery {}
impl PartialOrd for Recovery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Recovery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: the BinaryHeap pops the *earliest* recovery.
        other
            .at
            .partial_cmp(&self.at)
            .expect("recovery times are finite")
            .then(other.tag.cmp(&self.tag))
    }
}

/// The outcome of one run: the time series of the polyvalue census and the
/// stable-period average.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// `(time, polyvalued item count)` samples over the whole run.
    pub samples: Vec<(f64, usize)>,
    /// Mean polyvalue count over the post-warm-up stable period — the
    /// paper's "Actual P".
    pub mean_poly: f64,
    /// Largest census ever observed.
    pub peak_poly: usize,
    /// Transactions simulated.
    pub transactions: u64,
    /// Transactions that failed (entered doubt).
    pub failures: u64,
    /// Transactions that read at least one polyvalued input
    /// (polytransactions).
    pub polytransactions: u64,
}

impl SimResult {
    /// Batch-means estimate (with 95 % confidence half-width) of the stable
    /// polyvalue census, over the post-warm-up samples.
    pub fn stable_estimate(
        &self,
        warmup_frac: f64,
        batches: usize,
    ) -> Option<crate::stats::BatchMeans> {
        let cutoff = self.samples.last()?.0 * warmup_frac;
        let stable: Vec<f64> = self
            .samples
            .iter()
            .filter(|&&(t, _)| t >= cutoff)
            .map(|&(_, p)| p as f64)
            .collect();
        crate::stats::batch_means(&stable, batches)
    }
}

/// The simulation state, stepped transaction by transaction.
#[derive(Debug)]
pub struct Simulation {
    cfg: SimConfig,
    rng: SimRng,
    now: f64,
    next_tag: Tag,
    /// Items currently holding polyvalues, with the transactions they
    /// depend on. Items not present are simple.
    poly_items: BTreeMap<u64, BTreeSet<Tag>>,
    /// Reverse index: in-doubt transaction → items tagged with it.
    tag_items: BTreeMap<Tag, BTreeSet<u64>>,
    recoveries: BinaryHeap<Recovery>,
    transactions: u64,
    failures: u64,
    polytransactions: u64,
}

impl Simulation {
    /// Builds a simulation; panics on invalid configuration.
    pub fn new(cfg: SimConfig) -> Self {
        cfg.validate().expect("invalid simulation configuration");
        Simulation {
            cfg,
            rng: SimRng::new(cfg.seed),
            now: 0.0,
            next_tag: 0,
            poly_items: BTreeMap::new(),
            tag_items: BTreeMap::new(),
            recoveries: BinaryHeap::new(),
            transactions: 0,
            failures: 0,
            polytransactions: 0,
        }
    }

    /// Current number of items with polyvalues — the paper's `P(t)`.
    pub fn poly_count(&self) -> usize {
        self.poly_items.len()
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Injects `n` polyvalues on distinct items, all dependent on one burst
    /// failure (for transient experiments). Recovery is scheduled per `R`.
    pub fn inject_burst(&mut self, n: u64) {
        let items = self.cfg.params.i as u64;
        for k in 0..n.min(items) {
            let tag = self.fresh_tag();
            self.tag_item(k % items, tag);
            self.schedule_recovery(tag);
        }
    }

    /// Runs to the horizon, sampling the census, and returns the result.
    pub fn run(mut self) -> SimResult {
        let mut samples = Vec::new();
        let mut next_sample = 0.0;
        let mut peak = 0usize;
        let u = self.cfg.params.u;
        while self.now < self.cfg.horizon_secs {
            // Sample the census at every boundary we crossed.
            while next_sample <= self.now {
                samples.push((next_sample, self.poly_count()));
                peak = peak.max(self.poly_count());
                next_sample += self.cfg.sample_every_secs;
            }
            let gap = self.rng.exponential(1.0 / u);
            self.now += gap;
            self.drain_recoveries();
            self.step_transaction();
        }
        let warmup_until = self.cfg.horizon_secs * self.cfg.warmup_frac;
        let stable: Vec<usize> = samples
            .iter()
            .filter(|&&(t, _)| t >= warmup_until)
            .map(|&(_, p)| p)
            .collect();
        let mean_poly = if stable.is_empty() {
            0.0
        } else {
            stable.iter().sum::<usize>() as f64 / stable.len() as f64
        };
        SimResult {
            samples,
            mean_poly,
            peak_poly: peak,
            transactions: self.transactions,
            failures: self.failures,
            polytransactions: self.polytransactions,
        }
    }

    /// One transaction of the paper's workload.
    fn step_transaction(&mut self) {
        self.transactions += 1;
        let p = self.cfg.params;
        let items = p.i as u64;
        let target = self.rng.below(items);
        // Dependencies: d ~ Exp(D) random items, plus the previous value of
        // the target with probability (1 − Y).
        let d = self.rng.exponential(p.d).round() as u64;
        let mut input_tags: BTreeSet<Tag> = BTreeSet::new();
        for _ in 0..d {
            let dep = self.rng.below(items);
            if let Some(tags) = self.poly_items.get(&dep) {
                input_tags.extend(tags.iter().copied());
            }
        }
        if !self.rng.chance(p.y) {
            if let Some(tags) = self.poly_items.get(&target) {
                input_tags.extend(tags.iter().copied());
            }
        }
        if !input_tags.is_empty() {
            self.polytransactions += 1;
        }
        let failed = self.rng.chance(p.f);
        if failed {
            self.failures += 1;
            let tag = self.fresh_tag();
            input_tags.insert(tag);
            self.schedule_recovery(tag);
        }
        // Install: the target now depends on exactly the input tags (the
        // update overwrites whatever the target depended on before).
        self.untag_item(target);
        for tag in input_tags {
            self.tag_item(target, tag);
        }
    }

    fn fresh_tag(&mut self) -> Tag {
        let tag = self.next_tag;
        self.next_tag += 1;
        tag
    }

    fn schedule_recovery(&mut self, tag: Tag) {
        let p = self.cfg.params;
        let downtime = if p.r > 0.0 {
            self.rng.exponential(1.0 / p.r)
        } else {
            f64::INFINITY
        };
        self.recoveries.push(Recovery {
            at: self.now + downtime,
            tag,
        });
    }

    /// Applies every recovery due by `now`: the recovered transaction's tag
    /// is removed from all polyvalues; untagged items become simple.
    fn drain_recoveries(&mut self) {
        while self.recoveries.peek().is_some_and(|r| r.at <= self.now) {
            let r = self.recoveries.pop().expect("peeked");
            let Some(items) = self.tag_items.remove(&r.tag) else {
                continue;
            };
            for item in items {
                if let Some(tags) = self.poly_items.get_mut(&item) {
                    tags.remove(&r.tag);
                    if tags.is_empty() {
                        self.poly_items.remove(&item);
                    }
                }
            }
        }
    }

    fn tag_item(&mut self, item: u64, tag: Tag) {
        self.poly_items.entry(item).or_default().insert(tag);
        self.tag_items.entry(tag).or_default().insert(item);
    }

    fn untag_item(&mut self, item: u64) {
        if let Some(tags) = self.poly_items.remove(&item) {
            for tag in tags {
                if let Some(items) = self.tag_items.get_mut(&tag) {
                    items.remove(&item);
                    if items.is_empty() {
                        self.tag_items.remove(&tag);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_model::ModelParams;

    fn cfg(u: f64, f: f64, i: f64, r: f64, y: f64, d: f64, seed: u64) -> SimConfig {
        SimConfig::new(ModelParams { u, f, i, r, y, d }, seed)
    }

    #[test]
    fn no_failures_means_no_polyvalues() {
        let result =
            Simulation::new(cfg(10.0, 0.0, 1e4, 0.01, 0.0, 1.0, 1).with_horizon(200.0)).run();
        assert_eq!(result.mean_poly, 0.0);
        assert_eq!(result.peak_poly, 0);
        assert_eq!(result.failures, 0);
        assert_eq!(result.polytransactions, 0);
        assert!(result.transactions > 1000);
    }

    #[test]
    fn failures_create_and_recovery_destroys() {
        let result =
            Simulation::new(cfg(10.0, 0.01, 1e4, 0.01, 0.0, 1.0, 2).with_horizon(2000.0)).run();
        assert!(result.failures > 0);
        assert!(result.mean_poly > 0.0);
        // The census returns toward small values — not monotone growth.
        assert!(result.mean_poly < 100.0, "mean {}", result.mean_poly);
    }

    #[test]
    fn runs_are_reproducible() {
        let a = Simulation::new(cfg(10.0, 0.01, 1e4, 0.01, 0.0, 1.0, 7).with_horizon(500.0)).run();
        let b = Simulation::new(cfg(10.0, 0.01, 1e4, 0.01, 0.0, 1.0, 7).with_horizon(500.0)).run();
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.transactions, b.transactions);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Simulation::new(cfg(10.0, 0.01, 1e4, 0.01, 0.0, 1.0, 7).with_horizon(500.0)).run();
        let b = Simulation::new(cfg(10.0, 0.01, 1e4, 0.01, 0.0, 1.0, 8).with_horizon(500.0)).run();
        assert_ne!(a.samples, b.samples);
    }

    #[test]
    fn burst_injection_decays() {
        let mut sim = Simulation::new(cfg(10.0, 0.0, 1e4, 0.05, 0.0, 1.0, 3).with_horizon(400.0));
        sim.inject_burst(200);
        assert_eq!(sim.poly_count(), 200);
        let result = sim.run();
        // With R = 0.05 the burst (mean lifetime 20s) is long gone by the
        // end of the run.
        let last = result.samples.last().unwrap();
        assert_eq!(last.1, 0, "burst must fully recover, got {last:?}");
    }

    #[test]
    fn polytransactions_propagate_tags() {
        // Tiny database and heavy failures: dependencies frequently hit
        // polyvalued items, so polytransactions must occur.
        let result =
            Simulation::new(cfg(20.0, 0.05, 100.0, 0.01, 0.0, 3.0, 4).with_horizon(500.0)).run();
        assert!(result.polytransactions > 0);
    }

    #[test]
    fn y_one_overwrites_reduce_population() {
        // With Y = 1 every successful update clears its target's tags
        // without inheriting them, so the census is smaller than with Y = 0
        // (all else equal) — the sign of the UY term in the model.
        let base = cfg(10.0, 0.01, 1e4, 0.01, 0.0, 5.0, 5).with_horizon(3000.0);
        let y0 = Simulation::new(base).run();
        let mut with_y = base;
        with_y.params.y = 1.0;
        let y1 = Simulation::new(with_y).run();
        assert!(
            y1.mean_poly < y0.mean_poly,
            "Y=1 mean {} must be below Y=0 mean {}",
            y1.mean_poly,
            y0.mean_poly
        );
    }

    #[test]
    fn stable_estimate_brackets_the_mean() {
        let result =
            Simulation::new(cfg(10.0, 0.01, 1e4, 0.01, 0.0, 1.0, 21).with_horizon(4000.0)).run();
        let est = result.stable_estimate(0.25, 10).expect("enough samples");
        assert!(
            est.covers(result.mean_poly),
            "{est:?} vs {}",
            result.mean_poly
        );
        assert!(est.half_width_95 > 0.0);
        assert!(est.relative_precision().unwrap() < 0.5);
    }

    #[test]
    fn census_stays_near_model_prediction() {
        // U=10, F=0.01, I=10⁴, R=0.01 → model predicts 11.11 (Table 2 row 3
        // measured 9.5 in the paper). Our mechanism-faithful simulation sits
        // slightly above the first-order prediction because an item carrying
        // several tags only becomes simple when the *last* recovers, which
        // the model's R·P destruction term ignores. Accept ±35%.
        let result =
            Simulation::new(cfg(10.0, 0.01, 1e4, 0.01, 0.0, 1.0, 11).with_horizon(4000.0)).run();
        assert!(
            result.mean_poly > 7.0 && result.mean_poly < 15.0,
            "mean {} out of band",
            result.mean_poly
        );
    }
}
