//! Configuration of the §4.2 stochastic simulation.

use pv_model::ModelParams;

/// Parameters of one simulation run: the paper's six model parameters plus
/// run control (horizon, warm-up, sampling, seed).
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// The model parameters `U, F, I, R, Y, D`.
    pub params: ModelParams,
    /// Virtual seconds to simulate in total.
    pub horizon_secs: f64,
    /// Leading fraction of the run excluded from the average (warm-up to
    /// reach the stable period the paper averages over).
    pub warmup_frac: f64,
    /// Interval between samples of the polyvalue census.
    pub sample_every_secs: f64,
    /// Random seed; identical configs and seeds reproduce exactly.
    pub seed: u64,
}

impl SimConfig {
    /// A run over the given parameters with defaults tuned so Table 2's
    /// configurations reach their stable period comfortably.
    pub fn new(params: ModelParams, seed: u64) -> Self {
        SimConfig {
            params,
            horizon_secs: 4_000.0,
            warmup_frac: 0.25,
            sample_every_secs: 5.0,
            seed,
        }
    }

    /// Overrides the horizon.
    pub fn with_horizon(mut self, secs: f64) -> Self {
        self.horizon_secs = secs;
        self
    }

    /// Checks run-control sanity in addition to the model parameters.
    // `!(x > 0.0)` deliberately rejects NaN as well.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), String> {
        self.params.validate()?;
        if !(self.horizon_secs > 0.0) {
            return Err("horizon must be positive".into());
        }
        if !(0.0..1.0).contains(&self.warmup_frac) {
            return Err("warm-up fraction must be in [0, 1)".into());
        }
        if !(self.sample_every_secs > 0.0) {
            return Err("sample interval must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        let c = SimConfig::new(ModelParams::typical(), 1);
        c.validate().unwrap();
        assert!(c.horizon_secs > 0.0);
    }

    #[test]
    fn with_horizon_overrides() {
        let c = SimConfig::new(ModelParams::typical(), 1).with_horizon(10.0);
        assert_eq!(c.horizon_secs, 10.0);
    }

    #[test]
    fn validation_rejects_bad_run_control() {
        let mut c = SimConfig::new(ModelParams::typical(), 1);
        c.horizon_secs = 0.0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::new(ModelParams::typical(), 1);
        c.warmup_frac = 1.0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::new(ModelParams::typical(), 1);
        c.sample_every_secs = 0.0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::new(ModelParams::typical(), 1);
        c.params.f = 2.0;
        assert!(c.validate().is_err());
    }
}
