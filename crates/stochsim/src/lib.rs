//! # pv-stochsim — the §4.2 stochastic simulation
//!
//! The paper validated its model by simulating the polyvalue mechanism at
//! the bookkeeping level: items tagged with the in-doubt transactions they
//! depend on, a Poisson update workload with exponential dependency fan-in,
//! Bernoulli failures, and exponential recovery. This crate is that
//! simulation, plus the Table 2 generator comparing the measured stable
//! polyvalue census against the `pv-model` prediction.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod sim;
pub mod stats;
pub mod table2;

pub use config::SimConfig;
pub use sim::{SimResult, Simulation};
pub use stats::{batch_means, lag1_autocorrelation, BatchMeans};
