//! Table 2 of the paper: simulation vs. model prediction.

use crate::config::SimConfig;
use crate::sim::Simulation;
use pv_model::{steady_state, ModelParams, Prediction};
use std::fmt::Write as _;

/// One row of Table 2: parameters, the paper's predicted and measured `P`,
/// and (after [`Table2Row::simulate`]) our measured `P`.
#[derive(Debug, Clone, Copy)]
pub struct Table2Row {
    /// The model parameters.
    pub params: ModelParams,
    /// The paper's "Predicted P" column.
    pub paper_predicted: f64,
    /// The paper's "Actual P" column (their simulation).
    pub paper_actual: f64,
}

impl Table2Row {
    /// The closed-form prediction from `pv-model` (must match the paper's
    /// predicted column).
    pub fn predicted(&self) -> f64 {
        match steady_state(&self.params) {
            Prediction::Stable(p) => p,
            Prediction::Unstable => f64::INFINITY,
        }
    }

    /// Runs our §4.2 simulation for this row.
    pub fn simulate(&self, seed: u64) -> f64 {
        Simulation::new(SimConfig::new(self.params, seed))
            .run()
            .mean_poly
    }
}

/// The six rows of Table 2 (all on `I = 10,000`).
pub fn rows() -> Vec<Table2Row> {
    let base = ModelParams {
        u: 2.0,
        f: 0.01,
        i: 1e4,
        r: 0.01,
        y: 0.0,
        d: 1.0,
    };
    vec![
        Table2Row {
            params: base,
            paper_predicted: 2.04,
            paper_actual: 2.00,
        },
        Table2Row {
            params: base.with_u(5.0),
            paper_predicted: 5.26,
            paper_actual: 2.71,
        },
        Table2Row {
            params: base.with_u(10.0),
            paper_predicted: 11.11,
            paper_actual: 9.5,
        },
        Table2Row {
            params: base.with_u(10.0).with_f(0.001),
            paper_predicted: 1.11,
            paper_actual: 0.74,
        },
        Table2Row {
            params: base.with_u(10.0).with_d(5.0),
            paper_predicted: 20.0,
            paper_actual: 19.8,
        },
        Table2Row {
            params: base.with_u(10.0).with_d(5.0).with_y(1.0),
            paper_predicted: 16.7,
            paper_actual: 15.8,
        },
    ]
}

/// Renders the table in the paper's layout, adding our measured column.
pub fn render(seed: u64) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Table 2: Results of Simulating the Polyvalue Mechanism"
    )
    .unwrap();
    writeln!(
        out,
        "{:>4} {:>7} {:>7} {:>6} {:>3} {:>3} | {:>9} {:>12} {:>8} {:>9}",
        "U", "F", "I", "R", "Y", "D", "Pred P", "Paper actual", "Ours", "Ours/Pred"
    )
    .unwrap();
    for row in rows() {
        let p = row.params;
        let ours = row.simulate(seed);
        writeln!(
            out,
            "{:>4} {:>7} {:>7} {:>6} {:>3} {:>3} | {:>9.2} {:>12.2} {:>8.2} {:>9.2}",
            p.u,
            p.f,
            p.i,
            p.r,
            p.y,
            p.d,
            row.predicted(),
            row.paper_actual,
            ours,
            ours / row.predicted(),
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicted_column_matches_paper() {
        for row in rows() {
            let predicted = row.predicted();
            assert!(
                (predicted - row.paper_predicted).abs() / row.paper_predicted < 0.01,
                "predicted {predicted} vs paper {}",
                row.paper_predicted
            );
        }
    }

    #[test]
    fn simulation_reproduces_the_papers_shape() {
        // The paper's qualitative findings: the census is *small* (tens of
        // items out of 10,000), *stable*, and tracks the model prediction to
        // within tens of percent. Our mechanism-faithful runs land slightly
        // above the first-order prediction (multi-tag items outlive the
        // model's R·P destruction term); the paper's short runs landed
        // slightly below (their row 2 deviates 2x from their own model).
        // Band: [0.5, 1.4] x predicted, and within [0.4, 3] x their actual.
        for (idx, row) in rows().iter().enumerate() {
            let ours = row.simulate(1000 + idx as u64);
            let predicted = row.predicted();
            assert!(
                ours >= predicted * 0.5 && ours <= predicted * 1.4,
                "row {idx}: ours {ours} vs predicted {predicted}"
            );
            assert!(
                ours >= row.paper_actual * 0.4 && ours <= row.paper_actual * 3.0,
                "row {idx}: ours {ours} vs paper actual {}",
                row.paper_actual
            );
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let s = render(7);
        assert!(s.contains("Table 2"));
        assert!(s.contains("19.8") || s.contains("19.80"));
        assert_eq!(s.lines().count(), 2 + rows().len());
    }
}
