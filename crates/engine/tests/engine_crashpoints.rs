//! Exhaustive crash-point recovery: for every stable-storage append point
//! any site reaches during a scripted multi-site transfer scenario, crash
//! the site there, recover it, and demand the tier-1 invariants
//! (conservation, no residual polyvalues, quiescence) after settling.
//!
//! Runs under both protocol-critical fsync policies: per-decision (background
//! records can be lost on crash) and periodic every-N (whole batches can be
//! lost). Both must recover cleanly at *every* point — the assertions are
//! exhaustive, not sampled.

use pv_engine::crashpoint::{enumerate_points, explore, CrashPointConfig};
use pv_simnet::SimDuration;
use pv_store::FsyncPolicy;

fn scenario(policy: FsyncPolicy) -> CrashPointConfig {
    CrashPointConfig {
        seed: 0xCAFE,
        sites: 3,
        accounts: 9,
        initial: 500,
        transfers: 10,
        rate_per_sec: 15.0,
        policy,
        settle_secs: 60,
        recover_after: SimDuration::from_millis(700),
        max_points_per_site: None, // exhaustive
    }
}

#[test]
fn per_decision_policy_recovers_at_every_crash_point() {
    let report = explore(&scenario(FsyncPolicy::PerDecision));
    // Sanity: the scenario actually produced a meaningful search space.
    assert!(
        report.points_explored > 20,
        "search space too small: {report}"
    );
    assert!(
        report.ok(),
        "invariant violations under per-decision fsync:\n{}",
        report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn periodic_fsync_policy_recovers_at_every_crash_point() {
    // EveryN(8): up to 7 background records evaporate on any crash; the
    // explicit syncs in stage/record_decision/bump_epoch plus the §3.3
    // inquiry protocol must still recover every point.
    let report = explore(&scenario(FsyncPolicy::EveryN(8)));
    assert!(
        report.points_explored > 20,
        "search space too small: {report}"
    );
    assert!(
        report.ok(),
        "invariant violations under periodic fsync:\n{}",
        report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn crash_point_enumeration_covers_every_site() {
    let points = enumerate_points(&scenario(FsyncPolicy::PerDecision));
    assert_eq!(points.len(), 3);
    for (s, set) in points.iter().enumerate() {
        assert!(!set.is_empty(), "site {s} reached no append points");
        // Append counts start at the seeded image and only grow.
        let min = *set.iter().next().unwrap();
        assert!(min >= 1, "site {s} min point {min}");
    }
}
