//! Exhaustive crash-point recovery: for every stable-storage append point
//! any site reaches during a scripted multi-site transfer scenario, crash
//! the site there, recover it, and demand the tier-1 invariants
//! (conservation, no residual polyvalues, quiescence) after settling.
//!
//! Runs under both protocol-critical fsync policies: per-decision (background
//! records can be lost on crash) and periodic every-N (whole batches can be
//! lost). Both must recover cleanly at *every* point — the assertions are
//! exhaustive, not sampled.
//!
//! The same sweep runs under Paxos Commit, whose durability surface is
//! different: each acceptor logs a record per vote, promise and acceptance,
//! and recovery must replay them back to the same ballot/decision state or a
//! takeover could assemble a majority the fast path cannot see.

use pv_engine::crashpoint::{enumerate_points, explore, CrashPointConfig};
use pv_engine::CommitProtocol;
use pv_simnet::SimDuration;
use pv_store::FsyncPolicy;

fn scenario(protocol: CommitProtocol, policy: FsyncPolicy) -> CrashPointConfig {
    CrashPointConfig {
        seed: 0xCAFE,
        sites: 3,
        accounts: 9,
        initial: 500,
        transfers: 10,
        rate_per_sec: 15.0,
        policy,
        settle_secs: 60,
        recover_after: SimDuration::from_millis(700),
        max_points_per_site: None, // exhaustive
        protocol,
        // Tiny LSM thresholds: the scenario must reach flush and
        // compaction crash coordinates, not just WAL append points.
        memtable_threshold: 2,
        run_threshold: 2,
    }
}

fn assert_clean(label: &str, cfg: &CrashPointConfig) {
    let report = explore(cfg);
    // Sanity: the scenario actually produced a meaningful search space.
    assert!(
        report.points_explored > 20,
        "{label}: search space too small: {report}"
    );
    assert!(
        report.ok(),
        "{label}: invariant violations:\n{}",
        report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn per_decision_policy_recovers_at_every_crash_point() {
    assert_clean(
        "polyvalue/per-decision",
        &scenario(CommitProtocol::Polyvalue, FsyncPolicy::PerDecision),
    );
}

#[test]
fn periodic_fsync_policy_recovers_at_every_crash_point() {
    // EveryN(8): up to 7 background records evaporate on any crash; the
    // explicit syncs in stage/record_decision/bump_epoch plus the §3.3
    // inquiry protocol must still recover every point.
    assert_clean(
        "polyvalue/every-8",
        &scenario(CommitProtocol::Polyvalue, FsyncPolicy::EveryN(8)),
    );
}

#[test]
fn paxos_commit_recovers_at_every_crash_point_per_decision() {
    assert_clean(
        "paxos-commit/per-decision",
        &scenario(CommitProtocol::PaxosCommit, FsyncPolicy::PerDecision),
    );
}

#[test]
fn paxos_commit_recovers_at_every_crash_point_periodic_fsync() {
    // Vote/promise/accept records are synced at append time by the acceptor
    // discipline, so even an EveryN(8) background policy must replay every
    // acceptor to the exact ballot/decision state the peers already acted on.
    assert_clean(
        "paxos-commit/every-8",
        &scenario(CommitProtocol::PaxosCommit, FsyncPolicy::EveryN(8)),
    );
}

#[test]
fn crash_point_enumeration_covers_every_site() {
    let points = enumerate_points(&scenario(
        CommitProtocol::Polyvalue,
        FsyncPolicy::PerDecision,
    ));
    assert_eq!(points.len(), 3);
    for (s, set) in points.iter().enumerate() {
        assert!(!set.is_empty(), "site {s} reached no append points");
        // Append counts start at the seeded image and only grow.
        let min = *set.iter().next().unwrap();
        assert!(min >= 1, "site {s} min point {min}");
    }
}

#[test]
fn paxos_crash_points_cover_acceptor_records() {
    // The paxos scenario must actually exercise the acceptor log: votes,
    // promises or acceptances appear as extra append points compared to the
    // pure item/decision records of the blocking protocols.
    let points = enumerate_points(&scenario(
        CommitProtocol::PaxosCommit,
        FsyncPolicy::PerDecision,
    ));
    assert_eq!(points.len(), 3);
    for (s, set) in points.iter().enumerate() {
        assert!(!set.is_empty(), "site {s} reached no append points");
    }
}

#[test]
fn lsm_crash_points_cover_flushes_and_compactions() {
    use pv_engine::crashpoint::enumerate_lsm_points;
    // Under the tiny thresholds every site's keyspace flushes (and, past
    // run_threshold runs, compacts) during the scenario, so the LSM sweep
    // has real coordinates at every site — crashes land just after a flush
    // or compaction rewired the partition's run set.
    let points = enumerate_lsm_points(&scenario(
        CommitProtocol::Polyvalue,
        FsyncPolicy::PerDecision,
    ));
    assert_eq!(points.len(), 3);
    for (s, set) in points.iter().enumerate() {
        assert!(!set.is_empty(), "site {s} never flushed or compacted");
    }
}
