//! End-to-end protocol tests on a simulated cluster.

use pv_core::{Entry, Expr, ItemId, TransactionSpec, Value};
use pv_engine::{
    ClientConfig, Cluster, ClusterBuilder, CommitProtocol, Directory, EngineConfig, Script,
    TxnResult,
};
use pv_simnet::{NetConfig, NodeId, SimDuration, SimTime};

/// Transfer `amt` from `from` to `to` if funds suffice.
fn transfer(from: u64, to: u64, amt: i64) -> TransactionSpec {
    let (f, t) = (ItemId(from), ItemId(to));
    TransactionSpec::new()
        .guard(Expr::read(f).ge(Expr::int(amt)))
        .update(f, Expr::read(f).sub(Expr::int(amt)))
        .update(t, Expr::read(t).add(Expr::int(amt)))
        .output("granted", Expr::read(f).ge(Expr::int(amt)))
}

fn balance_query(item: u64) -> TransactionSpec {
    TransactionSpec::new().output("balance", Expr::read(ItemId(item)))
}

/// Two sites, two items (item 0 at site 0, item 1 at site 1), one scripted
/// client.
fn two_site_cluster(specs: Vec<TransactionSpec>, protocol: CommitProtocol) -> Cluster {
    ClusterBuilder::new(2, Directory::Mod(2))
        .seed(7)
        .net(NetConfig::instant())
        .engine(EngineConfig::with_protocol(protocol))
        .item(ItemId(0), Value::Int(100))
        .item(ItemId(1), Value::Int(100))
        .client(
            // No retries: these scenarios assert the fate of the *first*
            // attempt; a retry after the heal would re-run the transfer.
            ClientConfig {
                max_retries: 0,
                ..ClientConfig::default()
            },
            Box::new(Script::new(specs, SimDuration::from_millis(10))),
        )
        .build()
}

fn run_secs(cluster: &mut Cluster, s: u64) {
    let t = cluster.world.now() + SimDuration::from_secs(s);
    cluster.run_until(t);
}

#[test]
fn transfer_commits_and_moves_money() {
    let mut cluster = two_site_cluster(vec![transfer(0, 1, 30)], CommitProtocol::Polyvalue);
    run_secs(&mut cluster, 2);
    assert_eq!(
        cluster.item_entry(ItemId(0)),
        Ok(Entry::Simple(Value::Int(70)))
    );
    assert_eq!(
        cluster.item_entry(ItemId(1)),
        Ok(Entry::Simple(Value::Int(130)))
    );
    let results = cluster.client(0).unwrap().results();
    assert_eq!(results.len(), 1);
    assert!(results[0].1.is_committed());
    assert!(results[0].1.fully_granted());
    assert!(cluster.all_quiescent());
    assert_eq!(cluster.world.metrics().counter("txn.committed"), 1);
    assert_eq!(cluster.world.metrics().counter("relaxed.violations"), 0);
}

#[test]
fn insufficient_funds_is_denied_not_aborted() {
    let mut cluster = two_site_cluster(vec![transfer(0, 1, 500)], CommitProtocol::Polyvalue);
    run_secs(&mut cluster, 2);
    assert_eq!(
        cluster.item_entry(ItemId(0)),
        Ok(Entry::Simple(Value::Int(100)))
    );
    assert_eq!(
        cluster.item_entry(ItemId(1)),
        Ok(Entry::Simple(Value::Int(100)))
    );
    let results = cluster.client(0).unwrap().results();
    assert_eq!(results.len(), 1);
    assert!(
        results[0].1.is_committed(),
        "denied is still a completed txn"
    );
    assert!(!results[0].1.fully_granted());
    assert_eq!(cluster.world.metrics().counter("txn.denied"), 1);
    assert!(cluster.all_quiescent());
}

#[test]
fn read_only_query_returns_balance() {
    let mut cluster = two_site_cluster(vec![balance_query(1)], CommitProtocol::Polyvalue);
    run_secs(&mut cluster, 2);
    let results = cluster.client(0).unwrap().results();
    assert_eq!(results.len(), 1);
    match &results[0].1 {
        TxnResult::Committed { outputs, .. } => {
            assert_eq!(
                outputs[0],
                ("balance".to_string(), Entry::Simple(Value::Int(100)))
            );
        }
        other => panic!("unexpected {other:?}"),
    }
    assert!(cluster.all_quiescent());
}

#[test]
fn sequential_transfers_conserve_money() {
    let specs = vec![
        transfer(0, 1, 10),
        transfer(1, 0, 5),
        transfer(0, 1, 20),
        transfer(1, 0, 100),
        transfer(0, 1, 1), // guard may deny depending on order; still conserves
    ];
    let mut cluster = two_site_cluster(specs, CommitProtocol::Polyvalue);
    run_secs(&mut cluster, 5);
    assert_eq!(cluster.sum_items((0..2).map(ItemId)).unwrap(), 200);
    assert!(cluster.all_quiescent());
}

/// Drives a transfer until the participant at site 1 has staged (wait phase),
/// then cuts the 0↔1 link. Returns the cluster mid-partition.
///
/// `after_decision` selects the flavour: `false` cuts before the coordinator
/// received `ready` (outcome will be abort), `true` cuts right after the
/// coordinator decided complete (participant misses the decision).
fn in_doubt_scenario(protocol: CommitProtocol, after_decision: bool) -> Cluster {
    let mut cluster = two_site_cluster(vec![transfer(0, 1, 30)], protocol);
    let (a, b) = (NodeId(0), NodeId(1));
    let mut guard = 0;
    loop {
        let t = SimTime(cluster.world.now().as_micros() + 1);
        cluster.run_until(t);
        guard += 1;
        assert!(guard < 1_000_000, "scenario never reached the target state");
        if after_decision {
            if cluster.world.metrics().counter("txn.committed") >= 1 {
                break;
            }
        } else if !cluster.site(1).unwrap().store().pending_txns().is_empty() {
            break;
        }
    }
    let now = cluster.world.now();
    cluster.world.schedule_partition(now, a, b);
    cluster
}

#[test]
fn partition_before_ready_installs_polyvalue_then_aborts_on_heal() {
    let mut cluster = in_doubt_scenario(CommitProtocol::Polyvalue, false);
    // Let the wait timeout fire at site 1: the in-doubt polyvalue appears.
    run_secs(&mut cluster, 1);
    assert_eq!(cluster.site(1).unwrap().poly_count(), 1, "item 1 should be in doubt");
    let entry = cluster.item_entry(ItemId(1)).unwrap();
    let poly = entry.as_poly().expect("polyvalue installed");
    let values: Vec<&Value> = poly.values().collect();
    assert!(values.contains(&&Value::Int(100)) && values.contains(&&Value::Int(130)));
    // Coordinator timed out on ready and aborted; item 0 is unchanged.
    assert_eq!(
        cluster.item_entry(ItemId(0)),
        Ok(Entry::Simple(Value::Int(100)))
    );
    // Heal; the inquiry protocol resolves the polyvalue to the old value.
    let now = cluster.world.now();
    cluster.world.schedule_heal(now, NodeId(0), NodeId(1));
    run_secs(&mut cluster, 5);
    assert_eq!(
        cluster.item_entry(ItemId(1)),
        Ok(Entry::Simple(Value::Int(100)))
    );
    assert_eq!(cluster.total_poly_count(), 0);
    assert!(cluster.all_quiescent());
    assert_eq!(cluster.sum_items((0..2).map(ItemId)).unwrap(), 200);
}

#[test]
fn partition_after_decision_installs_polyvalue_then_completes_on_heal() {
    let mut cluster = in_doubt_scenario(CommitProtocol::Polyvalue, true);
    run_secs(&mut cluster, 1);
    // The coordinator committed: item 0 already shows the debit, the client
    // has its reply, and item 1 is in doubt.
    assert_eq!(
        cluster.item_entry(ItemId(0)),
        Ok(Entry::Simple(Value::Int(70)))
    );
    assert!(cluster.client(0).unwrap().results()[0].1.is_committed());
    assert_eq!(cluster.site(1).unwrap().poly_count(), 1);
    // During the failure, processing at site 1 continues: a credit check
    // against the uncertain balance still yields a *simple* answer (§3.4).
    let entry = cluster.item_entry(ItemId(1)).unwrap();
    assert!(entry.is_poly());
    assert!(*entry.min_value() >= Value::Int(100));
    // Heal: the outcome (complete) propagates and the credit lands.
    let now = cluster.world.now();
    cluster.world.schedule_heal(now, NodeId(0), NodeId(1));
    run_secs(&mut cluster, 5);
    assert_eq!(
        cluster.item_entry(ItemId(1)),
        Ok(Entry::Simple(Value::Int(130)))
    );
    assert_eq!(cluster.total_poly_count(), 0);
    assert!(cluster.all_quiescent());
    assert_eq!(cluster.sum_items((0..2).map(ItemId)).unwrap(), 200);
}

#[test]
fn polytransaction_processes_in_doubt_item_during_partition() {
    let mut cluster = in_doubt_scenario(CommitProtocol::Polyvalue, true);
    run_secs(&mut cluster, 1);
    assert_eq!(cluster.site(1).unwrap().poly_count(), 1);
    // While the partition is up, submit a transaction that *updates* the
    // in-doubt item: a deposit of 7 into item 1, coordinated at site 1.
    // It must proceed (that is the whole point of polyvalues).
    let deposit = TransactionSpec::new()
        .update(ItemId(1), Expr::read(ItemId(1)).add(Expr::int(7)))
        .output("after", Expr::read(ItemId(1)));
    cluster.world.send_from_env(
        NodeId(1),
        pv_engine::Msg::Submit {
            req_id: 99,
            spec: deposit,
        },
    );
    run_secs(&mut cluster, 2);
    // It committed as a polytransaction: item 1 now holds {137/T, 107/¬T}.
    let entry = cluster.item_entry(ItemId(1)).unwrap();
    let poly = entry.as_poly().expect("still uncertain, but updated");
    let values: Vec<&Value> = poly.values().collect();
    assert!(values.contains(&&Value::Int(137)), "values: {values:?}");
    assert!(values.contains(&&Value::Int(107)), "values: {values:?}");
    assert!(cluster.world.metrics().counter("txn.polytransactions") >= 1);
    // Heal: T completed, so the deposit lands on top of the credit.
    let now = cluster.world.now();
    cluster.world.schedule_heal(now, NodeId(0), NodeId(1));
    run_secs(&mut cluster, 5);
    assert_eq!(
        cluster.item_entry(ItemId(1)),
        Ok(Entry::Simple(Value::Int(137)))
    );
    assert_eq!(cluster.total_poly_count(), 0);
    assert!(cluster.all_quiescent());
}

#[test]
fn blocking_protocol_keeps_item_locked_during_doubt() {
    let mut cluster = in_doubt_scenario(CommitProtocol::Blocking2pc, true);
    run_secs(&mut cluster, 1);
    // No polyvalue is installed; the item stays at its old value and locked.
    assert_eq!(cluster.site(1).unwrap().poly_count(), 0);
    assert!(cluster.world.metrics().counter("blocking.stalls") >= 1);
    // A deposit against the blocked item cannot proceed.
    let deposit = TransactionSpec::new().update(ItemId(1), Expr::read(ItemId(1)).add(Expr::int(7)));
    cluster.world.send_from_env(
        NodeId(1),
        pv_engine::Msg::Submit {
            req_id: 99,
            spec: deposit,
        },
    );
    run_secs(&mut cluster, 2);
    assert!(
        cluster.world.metrics().counter("lock.conflicts") >= 1,
        "the deposit must hit the lock held by the in-doubt transaction"
    );
    assert!(cluster.item_entry(ItemId(1)).unwrap().is_simple());
    // Heal: outcome arrives, lock releases, and the item settles at 130.
    let now = cluster.world.now();
    cluster.world.schedule_heal(now, NodeId(0), NodeId(1));
    run_secs(&mut cluster, 5);
    assert_eq!(
        cluster.item_entry(ItemId(1)),
        Ok(Entry::Simple(Value::Int(130)))
    );
    assert!(cluster.all_quiescent());
}

#[test]
fn relaxed_protocol_can_violate_atomicity() {
    // Unilateral *abort* while the coordinator committed: the credit is lost.
    let mut cluster = in_doubt_scenario(CommitProtocol::Relaxed { complete_prob: 0.0 }, true);
    run_secs(&mut cluster, 1);
    assert_eq!(
        cluster.site(1).unwrap().poly_count(),
        0,
        "relaxed never makes polyvalues"
    );
    assert!(cluster.world.metrics().counter("relaxed.unilateral") >= 1);
    let now = cluster.world.now();
    cluster.world.schedule_heal(now, NodeId(0), NodeId(1));
    run_secs(&mut cluster, 5);
    // Money vanished: 70 + 100 ≠ 200.
    assert_eq!(
        cluster.item_entry(ItemId(0)),
        Ok(Entry::Simple(Value::Int(70)))
    );
    assert_eq!(
        cluster.item_entry(ItemId(1)),
        Ok(Entry::Simple(Value::Int(100)))
    );
    assert_eq!(cluster.sum_items((0..2).map(ItemId)).unwrap(), 170);
    assert!(cluster.world.metrics().counter("relaxed.violations") >= 1);
}

#[test]
fn participant_crash_recovers_staging_from_wal() {
    let mut cluster = in_doubt_scenario(CommitProtocol::Polyvalue, true);
    // Crash site 1 while it is in doubt (before its wait timeout).
    let now = cluster.world.now();
    cluster
        .world
        .schedule_crash(now + SimDuration::from_micros(10), NodeId(1));
    cluster
        .world
        .schedule_recover(now + SimDuration::from_millis(50), NodeId(1));
    run_secs(&mut cluster, 1);
    // After recovery the staged transaction resumed and (still partitioned)
    // timed out into a polyvalue.
    assert_eq!(cluster.site(1).unwrap().poly_count(), 1);
    let now = cluster.world.now();
    cluster.world.schedule_heal(now, NodeId(0), NodeId(1));
    run_secs(&mut cluster, 5);
    assert_eq!(
        cluster.item_entry(ItemId(1)),
        Ok(Entry::Simple(Value::Int(130)))
    );
    assert!(cluster.all_quiescent());
    assert_eq!(cluster.sum_items((0..2).map(ItemId)).unwrap(), 200);
}

#[test]
fn coordinator_crash_leads_to_presumed_abort() {
    // Cut before ready, so the coordinator never decides; then crash it and
    // recover it. The participant's inquiry must get "presumed abort".
    let mut cluster = in_doubt_scenario(CommitProtocol::Polyvalue, false);
    let now = cluster.world.now();
    cluster
        .world
        .schedule_crash(now + SimDuration::from_micros(5), NodeId(0));
    cluster
        .world
        .schedule_recover(now + SimDuration::from_millis(100), NodeId(0));
    cluster
        .world
        .schedule_heal(now + SimDuration::from_millis(200), NodeId(0), NodeId(1));
    run_secs(&mut cluster, 6);
    assert_eq!(
        cluster.item_entry(ItemId(0)),
        Ok(Entry::Simple(Value::Int(100)))
    );
    assert_eq!(
        cluster.item_entry(ItemId(1)),
        Ok(Entry::Simple(Value::Int(100)))
    );
    assert_eq!(cluster.total_poly_count(), 0);
    assert!(cluster.all_quiescent());
}

#[test]
fn credit_authorization_on_polyvalue_yields_simple_answer() {
    let mut cluster = in_doubt_scenario(CommitProtocol::Polyvalue, true);
    run_secs(&mut cluster, 1);
    assert!(cluster.item_entry(ItemId(1)).unwrap().is_poly());
    // Authorize a charge of 50 against the uncertain balance {100, 130}:
    // every alternative suffices, so the answer is certain (§3.4/§5).
    let auth = TransactionSpec::new().output("ok", Expr::read(ItemId(1)).ge(Expr::int(50)));
    cluster.world.send_from_env(
        NodeId(1),
        pv_engine::Msg::Submit {
            req_id: 42,
            spec: auth,
        },
    );
    run_secs(&mut cluster, 1);
    let m = cluster.world.metrics();
    assert!(m.counter("txn.polytransactions") >= 1);
    assert_eq!(
        m.counter("txn.uncertain_output"),
        0,
        "a loosely-dependent output must come out simple"
    );
}

#[test]
fn withhold_policy_delays_uncertain_replies_until_resolution() {
    use pv_engine::{EngineConfig, UncertainOutputPolicy};
    // Same in-doubt setup, but with the §3.4 Withhold policy and a client
    // that queries the uncertain balance.
    let transfer = transfer(0, 1, 30);
    let query = balance_query(1);
    let mut cluster = ClusterBuilder::new(2, Directory::Mod(2))
        .seed(7)
        .net(NetConfig::instant())
        .engine(EngineConfig {
            uncertain_outputs: UncertainOutputPolicy::Withhold,
            ..EngineConfig::with_protocol(CommitProtocol::Polyvalue)
        })
        .item(ItemId(0), Value::Int(100))
        .item(ItemId(1), Value::Int(100))
        .client(
            ClientConfig {
                max_retries: 0,
                response_timeout: SimDuration::from_secs(60),
                ..ClientConfig::default()
            },
            // The query arrives 2 s in, while item 1 is in doubt.
            Box::new(Script::new(
                vec![transfer, query],
                SimDuration::from_secs(2),
            )),
        )
        .build();
    // Let the transfer commit (the script submits it at t = 2 s), then cut
    // the link before the decision reaches site 1. Skip close to the
    // submission first, then probe at microsecond granularity.
    cluster.run_until(SimTime::from_millis(1_990));
    let mut guard = 0;
    loop {
        let t = SimTime(cluster.world.now().as_micros() + 1);
        cluster.run_until(t);
        guard += 1;
        assert!(guard < 1_000_000);
        if cluster.world.metrics().counter("txn.committed") >= 1 {
            break;
        }
    }
    let now = cluster.world.now();
    cluster.world.schedule_partition(now, NodeId(0), NodeId(1));
    // The query runs at ~2 s against the polyvalued balance; its answer is
    // uncertain, so the coordinator withholds it.
    cluster.run_until(SimTime::from_secs(5));
    assert_eq!(cluster.world.metrics().counter("txn.withheld"), 1);
    assert_eq!(cluster.world.metrics().counter("txn.withheld_released"), 0);
    // The client has its transfer result but is still waiting on the query.
    assert_eq!(cluster.client(0).unwrap().results().len(), 1);
    assert_eq!(cluster.client(0).unwrap().outstanding_count(), 1);
    // Heal: the outcome resolves the balance, the withheld reply releases
    // with a *simple* value.
    let now = cluster.world.now();
    cluster.world.schedule_heal(now, NodeId(0), NodeId(1));
    cluster.run_until(now + SimDuration::from_secs(5));
    assert_eq!(cluster.world.metrics().counter("txn.withheld_released"), 1);
    let results = cluster.client(0).unwrap().results();
    assert_eq!(results.len(), 2);
    match &results[1].1 {
        TxnResult::Committed { outputs, .. } => {
            assert_eq!(
                outputs[0],
                ("balance".to_string(), Entry::Simple(Value::Int(130)))
            );
        }
        other => panic!("unexpected {other:?}"),
    }
    assert!(cluster.all_quiescent());
}

#[test]
fn static_checks_gate_rejects_ill_typed_specs() {
    use pv_engine::AbortReason;
    // First spec is statically wrong (int + bool), second is fine: the gate
    // must reject the first without protocol work and pass the second.
    let bad = TransactionSpec::new().update(ItemId(0), Expr::int(1).add(Expr::bool(true)));
    let topo = pv_engine::Topology::new(2, Directory::Mod(2)).static_checks();
    let mut cluster = ClusterBuilder::from_topology(topo)
        .seed(7)
        .net(NetConfig::instant())
        .item(ItemId(0), Value::Int(100))
        .item(ItemId(1), Value::Int(100))
        .client(
            ClientConfig {
                max_retries: 3,
                ..ClientConfig::default()
            },
            Box::new(Script::new(
                vec![bad, transfer(0, 1, 30)],
                SimDuration::from_millis(10),
            )),
        )
        .build();
    run_secs(&mut cluster, 2);
    let results = cluster.client(0).unwrap().results();
    assert_eq!(results.len(), 2);
    match &results[0].1 {
        TxnResult::Aborted {
            reason: AbortReason::Rejected(report),
        } => assert!(report.contains("PV001"), "report: {report}"),
        other => panic!("expected static rejection, got {other:?}"),
    }
    assert!(results[1].1.is_committed());
    // The rejection is not retried (it is final) and never reaches
    // evaluation: exactly one commit, one rejection, no eval aborts.
    assert_eq!(cluster.world.metrics().counter("txn.rejected.static"), 1);
    assert_eq!(cluster.world.metrics().counter("txn.committed"), 1);
    assert_eq!(cluster.world.metrics().counter("txn.aborted.eval"), 0);
    assert_eq!(cluster.world.metrics().counter("client.retries"), 0);
    assert_eq!(
        cluster.item_entry(ItemId(0)),
        Ok(Entry::Simple(Value::Int(70)))
    );
    assert!(cluster.all_quiescent());
}

/// Snapshot reads on the simulated runtime: coordination-free (no lock or
/// protocol counters move, no messages appear in the trace) and fully
/// deterministic — two same-seed runs that interleave a snapshot read
/// produce byte-identical traces.
#[test]
fn sim_snapshot_reads_are_coordination_free_and_deterministic() {
    let run = || {
        let mut cluster = ClusterBuilder::new(2, Directory::Mod(2))
            .seed(11)
            .net(NetConfig::instant())
            .engine(EngineConfig::default())
            .item(ItemId(0), Value::Int(100))
            .item(ItemId(1), Value::Int(100))
            .client(
                ClientConfig::default(),
                Box::new(Script::new(
                    vec![transfer(0, 1, 30)],
                    SimDuration::from_millis(10),
                )),
            )
            .collect_trace()
            .build();
        run_secs(&mut cluster, 2);

        let before: Vec<u64> = ["lock.conflicts", "lock.queued", "txn.submitted", "inquire.sent"]
            .iter()
            .map(|c| cluster.world.metrics().counter(c))
            .collect();
        let (snap, entries) = cluster.snapshot_read(0, &[ItemId(0)]).expect("snapshot read");
        assert!(snap > 0);
        assert_eq!(entries, vec![(ItemId(0), Entry::Simple(Value::Int(70)))]);
        // Empty item list = full scan of the site's keyspace.
        let (_, all) = cluster.snapshot_read(1, &[]).expect("full scan");
        assert_eq!(all, vec![(ItemId(1), Entry::Simple(Value::Int(130)))]);
        let after: Vec<u64> = ["lock.conflicts", "lock.queued", "txn.submitted", "inquire.sent"]
            .iter()
            .map(|c| cluster.world.metrics().counter(c))
            .collect();
        assert_eq!(before, after, "snapshot reads touched protocol counters");
        assert_eq!(cluster.world.metrics().counter("store.snapshot_reads"), 2);

        let text = cluster.trace().to_text();
        assert!(
            text.contains("snapshot_read site=s0"),
            "trace records the read: {text}"
        );
        text
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same-seed runs with snapshot reads diverged");
}
