//! Tests for the wound-wait lock policy (the no-wait alternative).

use pv_core::ItemId;
use pv_engine::{
    ClientConfig, Cluster, ClusterBuilder, CommitProtocol, Directory, EngineConfig, LockPolicy,
    RandomTransfers,
};
use pv_simnet::{FailureConfig, FailurePlan, NetConfig, SimRng, SimTime};

const ACCOUNTS: u64 = 6; // few accounts → heavy contention
const INITIAL: i64 = 1_000;

fn contended_cluster(policy: LockPolicy, seed: u64) -> Cluster {
    let mut builder = ClusterBuilder::new(3, Directory::Mod(3))
        .seed(seed)
        .net(NetConfig::default())
        .engine(EngineConfig {
            lock_policy: policy,
            ..EngineConfig::with_protocol(CommitProtocol::Polyvalue)
        })
        .uniform_items(ACCOUNTS, INITIAL);
    for _ in 0..3 {
        builder = builder.client(
            ClientConfig {
                record_results: false,
                ..ClientConfig::default()
            },
            Box::new(RandomTransfers::new(ACCOUNTS, 30.0, 50).with_limit(250)),
        );
    }
    builder.build()
}

#[test]
fn wound_wait_conserves_under_contention() {
    let mut cluster = contended_cluster(LockPolicy::WoundWait, 91);
    cluster.run_until(SimTime::from_secs(40));
    assert_eq!(
        cluster.sum_items((0..ACCOUNTS).map(ItemId)).unwrap(),
        ACCOUNTS as i64 * INITIAL
    );
    assert_eq!(cluster.total_poly_count(), 0);
    assert!(cluster.all_quiescent());
    let m = cluster.world.metrics();
    // The policy must actually have been exercised.
    assert!(
        m.counter("lock.queued") > 0 || m.counter("lock.wounds") > 0,
        "contention must trigger queueing or wounding (queued {}, wounds {})",
        m.counter("lock.queued"),
        m.counter("lock.wounds"),
    );
    assert!(m.counter("txn.committed") > 400);
}

#[test]
fn wound_wait_reduces_client_visible_aborts() {
    let nowait = {
        let mut c = contended_cluster(LockPolicy::NoWait, 92);
        c.run_until(SimTime::from_secs(40));
        c
    };
    let woundwait = {
        let mut c = contended_cluster(LockPolicy::WoundWait, 92);
        c.run_until(SimTime::from_secs(40));
        c
    };
    let nw = nowait.world.metrics();
    let ww = woundwait.world.metrics();
    // Same workload, same seed: wound-wait absorbs conflicts in the queue
    // instead of bouncing them to the client.
    assert!(
        ww.counter("client.retries") < nw.counter("client.retries"),
        "wound-wait retries {} must undercut no-wait retries {}",
        ww.counter("client.retries"),
        nw.counter("client.retries"),
    );
    assert!(
        ww.counter("lock.queue_served") > 0,
        "queue must serve requests"
    );
    // Both conserve.
    assert_eq!(
        nowait.sum_items((0..ACCOUNTS).map(ItemId)).unwrap(),
        ACCOUNTS as i64 * INITIAL
    );
    assert_eq!(
        woundwait.sum_items((0..ACCOUNTS).map(ItemId)).unwrap(),
        ACCOUNTS as i64 * INITIAL
    );
}

#[test]
fn wound_wait_survives_chaos() {
    let mut cluster = contended_cluster(LockPolicy::WoundWait, 93);
    FailurePlan::poisson(
        FailureConfig {
            crash_rate_per_sec: 0.2,
            mean_downtime_secs: 0.8,
            horizon: SimTime::from_secs(12),
        },
        3,
        &mut SimRng::new(94),
    )
    .apply(&mut cluster.world);
    cluster.run_until(SimTime::from_secs(50));
    assert_eq!(
        cluster.sum_items((0..ACCOUNTS).map(ItemId)).unwrap(),
        ACCOUNTS as i64 * INITIAL
    );
    assert_eq!(cluster.total_poly_count(), 0);
    assert!(cluster.all_quiescent());
    assert!(cluster.world.metrics().counter("node.crashes") > 0);
}

#[test]
fn sharded_lock_decisions_are_deterministic() {
    // The lock table shards items across seed-free hash maps. If shard-map
    // iteration order ever leaked into wound-victim choice or queue service
    // order, same-seed runs would diverge in their lock counters. Compare
    // full metric exports byte-for-byte, and require that both the wound and
    // the queue path actually ran (so the equality is not vacuous).
    let run = |seed| {
        let mut c = contended_cluster(LockPolicy::WoundWait, seed);
        c.run_until(SimTime::from_secs(40));
        let snapshot = c.world.metrics().snapshot();
        let m = c.world.metrics();
        assert!(m.counter("lock.queued") > 0, "workload must park requests");
        assert!(m.counter("lock.wounds") > 0, "workload must wound");
        snapshot.to_json()
    };
    assert_eq!(run(98), run(98));
}

#[test]
fn queued_requests_are_never_lost() {
    // No lost wakeups: every request parked in the wound-wait queue must
    // eventually be served, expired, or withdrawn by its coordinator. A lost
    // wakeup strands the coordinator forever, so the cluster would fail to
    // quiesce; a mis-served one breaks conservation.
    for seed in [101u64, 102, 103] {
        let mut cluster = contended_cluster(LockPolicy::WoundWait, seed);
        cluster.run_until(SimTime::from_secs(60));
        let m = cluster.world.metrics();
        assert!(
            m.counter("lock.queued") > 0,
            "seed {seed}: the contended workload must exercise the queue"
        );
        assert!(
            m.counter("lock.queue_served") > 0,
            "seed {seed}: releases must wake parked requests"
        );
        assert!(
            cluster.all_quiescent(),
            "seed {seed}: a lost wakeup leaves coordinators stuck"
        );
        assert_eq!(
            cluster.sum_items((0..ACCOUNTS).map(ItemId)).unwrap(),
            ACCOUNTS as i64 * INITIAL,
            "seed {seed}"
        );
        assert_eq!(cluster.total_poly_count(), 0, "seed {seed}");
    }
}

#[test]
fn lock_table_wakeups_cross_shards() {
    // Table-level no-lost-wakeup check: a blocker's release must free every
    // item it held — on every shard — so parked requesters can proceed, and
    // `conflicts` must keep reporting blockers in ascending TxnId order (the
    // order wound-wait uses to pick victims) regardless of shard layout.
    use pv_core::TxnId;
    use pv_engine::locks::LockTable;
    let mut table = LockTable::new();
    let blocker = TxnId(1);
    let items: Vec<ItemId> = (0..48).map(ItemId).collect();
    for &item in &items {
        assert!(table.try_write(blocker, item));
    }
    // Every would-be requester sees exactly the blocker, on every item.
    for &item in &items {
        assert_eq!(table.conflicts(TxnId(9), item, true), vec![blocker]);
        assert!(!table.try_read(TxnId(9), item));
    }
    // Shared readers on one item report in ascending order even when added
    // out of order.
    table.release_all(blocker);
    for t in [7u64, 3, 5] {
        assert!(table.try_read(TxnId(t), ItemId(0)));
    }
    assert_eq!(
        table.conflicts(TxnId(9), ItemId(0), true),
        vec![TxnId(3), TxnId(5), TxnId(7)]
    );
    for t in [3u64, 5, 7] {
        table.release_all(TxnId(t));
    }
    // After the release sweep, every item on every shard is acquirable: no
    // shard retained a stale lock that would strand a parked request.
    for &item in &items {
        assert!(table.conflicts(TxnId(9), item, true).is_empty());
        assert!(table.try_write(TxnId(9), item), "item {item} stayed locked");
    }
    assert_eq!(table.release_all(TxnId(9)), items);
}

#[test]
fn wound_wait_never_wounds_staged_transactions() {
    // Indirect but load-bearing check: under chaos + contention, wound-wait
    // must never break atomicity, which it would if a staged (wait-phase)
    // transaction were wounded after its coordinator decided complete.
    for seed in [95u64, 96, 97] {
        let mut cluster = contended_cluster(LockPolicy::WoundWait, seed);
        FailurePlan::poisson(
            FailureConfig {
                crash_rate_per_sec: 0.3,
                mean_downtime_secs: 0.5,
                horizon: SimTime::from_secs(10),
            },
            3,
            &mut SimRng::new(seed ^ 1),
        )
        .apply(&mut cluster.world);
        cluster.run_until(SimTime::from_secs(45));
        assert_eq!(
            cluster.sum_items((0..ACCOUNTS).map(ItemId)).unwrap(),
            ACCOUNTS as i64 * INITIAL,
            "seed {seed}"
        );
        assert!(cluster.all_quiescent(), "seed {seed}");
    }
}
