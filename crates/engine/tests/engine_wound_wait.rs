//! Tests for the wound-wait lock policy (the no-wait alternative).

use pv_core::ItemId;
use pv_engine::{
    ClientConfig, Cluster, ClusterBuilder, CommitProtocol, Directory, EngineConfig, LockPolicy,
    RandomTransfers,
};
use pv_simnet::{FailureConfig, FailurePlan, NetConfig, SimRng, SimTime};

const ACCOUNTS: u64 = 6; // few accounts → heavy contention
const INITIAL: i64 = 1_000;

fn contended_cluster(policy: LockPolicy, seed: u64) -> Cluster {
    let mut builder = ClusterBuilder::new(3, Directory::Mod(3))
        .seed(seed)
        .net(NetConfig::default())
        .engine(EngineConfig {
            lock_policy: policy,
            ..EngineConfig::with_protocol(CommitProtocol::Polyvalue)
        })
        .uniform_items(ACCOUNTS, INITIAL);
    for _ in 0..3 {
        builder = builder.client(
            ClientConfig {
                record_results: false,
                ..ClientConfig::default()
            },
            Box::new(RandomTransfers::new(ACCOUNTS, 30.0, 50).with_limit(250)),
        );
    }
    builder.build()
}

#[test]
fn wound_wait_conserves_under_contention() {
    let mut cluster = contended_cluster(LockPolicy::WoundWait, 91);
    cluster.run_until(SimTime::from_secs(40));
    assert_eq!(
        cluster.sum_items((0..ACCOUNTS).map(ItemId)).unwrap(),
        ACCOUNTS as i64 * INITIAL
    );
    assert_eq!(cluster.total_poly_count(), 0);
    assert!(cluster.all_quiescent());
    let m = cluster.world.metrics();
    // The policy must actually have been exercised.
    assert!(
        m.counter("lock.queued") > 0 || m.counter("lock.wounds") > 0,
        "contention must trigger queueing or wounding (queued {}, wounds {})",
        m.counter("lock.queued"),
        m.counter("lock.wounds"),
    );
    assert!(m.counter("txn.committed") > 400);
}

#[test]
fn wound_wait_reduces_client_visible_aborts() {
    let nowait = {
        let mut c = contended_cluster(LockPolicy::NoWait, 92);
        c.run_until(SimTime::from_secs(40));
        c
    };
    let woundwait = {
        let mut c = contended_cluster(LockPolicy::WoundWait, 92);
        c.run_until(SimTime::from_secs(40));
        c
    };
    let nw = nowait.world.metrics();
    let ww = woundwait.world.metrics();
    // Same workload, same seed: wound-wait absorbs conflicts in the queue
    // instead of bouncing them to the client.
    assert!(
        ww.counter("client.retries") < nw.counter("client.retries"),
        "wound-wait retries {} must undercut no-wait retries {}",
        ww.counter("client.retries"),
        nw.counter("client.retries"),
    );
    assert!(
        ww.counter("lock.queue_served") > 0,
        "queue must serve requests"
    );
    // Both conserve.
    assert_eq!(
        nowait.sum_items((0..ACCOUNTS).map(ItemId)).unwrap(),
        ACCOUNTS as i64 * INITIAL
    );
    assert_eq!(
        woundwait.sum_items((0..ACCOUNTS).map(ItemId)).unwrap(),
        ACCOUNTS as i64 * INITIAL
    );
}

#[test]
fn wound_wait_survives_chaos() {
    let mut cluster = contended_cluster(LockPolicy::WoundWait, 93);
    FailurePlan::poisson(
        FailureConfig {
            crash_rate_per_sec: 0.2,
            mean_downtime_secs: 0.8,
            horizon: SimTime::from_secs(12),
        },
        3,
        &mut SimRng::new(94),
    )
    .apply(&mut cluster.world);
    cluster.run_until(SimTime::from_secs(50));
    assert_eq!(
        cluster.sum_items((0..ACCOUNTS).map(ItemId)).unwrap(),
        ACCOUNTS as i64 * INITIAL
    );
    assert_eq!(cluster.total_poly_count(), 0);
    assert!(cluster.all_quiescent());
    assert!(cluster.world.metrics().counter("node.crashes") > 0);
}

#[test]
fn wound_wait_never_wounds_staged_transactions() {
    // Indirect but load-bearing check: under chaos + contention, wound-wait
    // must never break atomicity, which it would if a staged (wait-phase)
    // transaction were wounded after its coordinator decided complete.
    for seed in [95u64, 96, 97] {
        let mut cluster = contended_cluster(LockPolicy::WoundWait, seed);
        FailurePlan::poisson(
            FailureConfig {
                crash_rate_per_sec: 0.3,
                mean_downtime_secs: 0.5,
                horizon: SimTime::from_secs(10),
            },
            3,
            &mut SimRng::new(seed ^ 1),
        )
        .apply(&mut cluster.world);
        cluster.run_until(SimTime::from_secs(45));
        assert_eq!(
            cluster.sum_items((0..ACCOUNTS).map(ItemId)).unwrap(),
            ACCOUNTS as i64 * INITIAL,
            "seed {seed}"
        );
        assert!(cluster.all_quiescent(), "seed {seed}");
    }
}
