//! Randomised soak tests: sustained workload under crash/recovery chaos,
//! followed by a calm period; the database must converge to a consistent,
//! polyvalue-free state with money conserved.

use pv_core::ItemId;
use pv_engine::{
    ClientConfig, Cluster, ClusterBuilder, CommitProtocol, Directory, EngineConfig,
    RandomTransfers, UniformRmw,
};
use pv_simnet::{FailureConfig, FailurePlan, NetConfig, SimTime};

const SITES: u32 = 4;
const ACCOUNTS: u64 = 40;
const INITIAL: i64 = 1_000;

// Soak seeds are pinned, not drawn from entropy: every run of a test here is
// the *same* run (the simulator is deterministic), so the suite cannot
// flake. Each constant was vetted to produce the chaos pattern its test
// asserts on — crashes actually occur, in-doubt transactions actually
// appear. Changing a seed requires re-vetting those assertions.
const SEED_POLY_CONVERGES: u64 = 42;
const SEED_BLOCKING_CONSERVES: u64 = 43;
const SEED_AVAILABILITY_RACE: u64 = 44;
const SEED_RELAXED_SETTLES: u64 = 45;
const SEED_RMW_WORKLOAD: u64 = 7;
const SEED_RMW_CHAOS: u64 = 99;
const SEED_REPRODUCIBILITY: u64 = 46;

fn chaos_cluster(protocol: CommitProtocol, seed: u64) -> Cluster {
    let mut builder = ClusterBuilder::new(SITES, Directory::Mod(SITES))
        .seed(seed)
        .net(NetConfig::default())
        .engine(EngineConfig::with_protocol(protocol))
        .uniform_items(ACCOUNTS, INITIAL);
    for _ in 0..3 {
        builder = builder.client(
            ClientConfig {
                record_results: false,
                ..ClientConfig::default()
            },
            Box::new(RandomTransfers::new(ACCOUNTS, 20.0, 50).with_limit(300)),
        );
    }
    builder.build()
}

fn inject_chaos(cluster: &mut Cluster, seed: u64) {
    let cfg = FailureConfig {
        crash_rate_per_sec: 0.2,
        mean_downtime_secs: 0.8,
        horizon: SimTime::from_secs(15),
    };
    let plan = FailurePlan::poisson(cfg, SITES, &mut pv_simnet::SimRng::new(seed));
    assert!(!plan.outages().is_empty(), "chaos must actually happen");
    plan.apply(&mut cluster.world);
}

/// Runs chaos then calm; returns the settled cluster and the number of
/// client commits that had landed by the end of the chaos window (the
/// "prompt processing" measure — afterwards both protocols catch up).
fn run_chaos_then_settle(protocol: CommitProtocol, seed: u64) -> (Cluster, u64) {
    let mut cluster = chaos_cluster(protocol, seed);
    inject_chaos(&mut cluster, seed.wrapping_add(1));
    // Chaos period, with periodic polyvalue sampling.
    for step in 1..=30 {
        cluster.run_until(SimTime::from_millis(step * 500));
        cluster.sample_poly_gauge();
    }
    let committed_during_chaos = cluster.world.metrics().counter("client.committed");
    // Calm period: no more failures; everything must settle.
    cluster.run_until(SimTime::from_secs(40));
    (cluster, committed_during_chaos)
}

#[test]
fn polyvalue_protocol_converges_and_conserves_money() {
    let (cluster, _) = run_chaos_then_settle(CommitProtocol::Polyvalue, SEED_POLY_CONVERGES);
    let m = cluster.world.metrics();
    assert!(
        m.counter("node.crashes") > 0,
        "chaos must have crashed sites"
    );
    assert!(m.counter("txn.committed") > 100, "work must have happened");
    // The headline claims: polyvalues were created during failures…
    assert!(
        m.counter("txn.in_doubt") > 0 || m.counter("poly.installed_items") > 0,
        "expected at least one in-doubt transaction under this chaos level"
    );
    // …and after recovery every one of them is gone,
    assert_eq!(
        cluster.total_poly_count(),
        0,
        "uncertainty must fully resolve"
    );
    assert!(cluster.all_quiescent(), "no protocol state may linger");
    // …with atomicity intact.
    assert_eq!(
        cluster.sum_items((0..ACCOUNTS).map(ItemId)).unwrap(),
        ACCOUNTS as i64 * INITIAL,
        "money must be conserved exactly"
    );
    assert_eq!(m.counter("relaxed.violations"), 0);
}

#[test]
fn blocking_protocol_also_conserves_but_blocks() {
    let (cluster, _) = run_chaos_then_settle(CommitProtocol::Blocking2pc, SEED_BLOCKING_CONSERVES);
    let m = cluster.world.metrics();
    assert!(m.counter("node.crashes") > 0);
    assert_eq!(
        cluster.total_poly_count(),
        0,
        "blocking 2PC never creates polyvalues"
    );
    assert_eq!(m.counter("poly.installed_items"), 0);
    assert!(cluster.all_quiescent());
    assert_eq!(
        cluster.sum_items((0..ACCOUNTS).map(ItemId)).unwrap(),
        ACCOUNTS as i64 * INITIAL
    );
}

#[test]
fn polyvalue_beats_blocking_on_availability() {
    // Same seed, same chaos, same workload — only the protocol differs.
    // The comparison is *prompt* completions (by the end of the failure
    // window); given time, both protocols catch up.
    let (poly, p_prompt) = run_chaos_then_settle(CommitProtocol::Polyvalue, SEED_AVAILABILITY_RACE);
    let (blocking, b_prompt) = run_chaos_then_settle(CommitProtocol::Blocking2pc, SEED_AVAILABILITY_RACE);
    assert!(
        p_prompt >= b_prompt,
        "prompt commits: polyvalue {p_prompt} vs blocking {b_prompt}"
    );
    let b = blocking.world.metrics();
    assert!(b.counter("blocking.stalls") > 0 || b.counter("lock.conflicts") > 0);
    // And the polyvalue run must actually have exercised the mechanism.
    assert!(poly.world.metrics().counter("txn.in_doubt") > 0);
}

#[test]
fn relaxed_protocol_eventually_settles_even_if_inconsistent() {
    let (cluster, _) = run_chaos_then_settle(CommitProtocol::Relaxed { complete_prob: 0.5 }, SEED_RELAXED_SETTLES);
    let m = cluster.world.metrics();
    assert!(m.counter("node.crashes") > 0);
    assert_eq!(cluster.total_poly_count(), 0);
    assert!(cluster.all_quiescent());
    // Not asserting conservation: the whole point of this baseline is that
    // it may break atomicity. If it made unilateral calls, at least some
    // bookkeeping must exist.
    if m.counter("relaxed.violations") > 0 {
        assert!(m.counter("relaxed.unilateral") > 0);
    }
}

#[test]
fn rmw_workload_mirrors_paper_parameters_and_settles() {
    // The §4.2-shaped workload at engine level: updates with dependencies.
    let mut builder = ClusterBuilder::new(SITES, Directory::Mod(SITES))
        .seed(SEED_RMW_WORKLOAD)
        .net(NetConfig::default())
        .engine(EngineConfig::default())
        .uniform_items(64, 10);
    builder = builder.client(
        ClientConfig {
            record_results: false,
            ..ClientConfig::default()
        },
        Box::new(UniformRmw::new(64, 30.0, 1.0, 0.0).with_limit(400)),
    );
    let mut cluster = builder.build();
    inject_chaos(&mut cluster, SEED_RMW_CHAOS);
    cluster.run_until(SimTime::from_secs(20));
    cluster.run_until(SimTime::from_secs(40));
    assert_eq!(cluster.total_poly_count(), 0);
    assert!(cluster.all_quiescent());
    let m = cluster.world.metrics();
    assert!(m.counter("txn.committed") > 100);
}

#[test]
fn chaos_runs_are_reproducible() {
    let (a, _) = run_chaos_then_settle(CommitProtocol::Polyvalue, SEED_REPRODUCIBILITY);
    let (b, _) = run_chaos_then_settle(CommitProtocol::Polyvalue, SEED_REPRODUCIBILITY);
    let (ma, mb) = (a.world.metrics(), b.world.metrics());
    for key in [
        "txn.committed",
        "txn.in_doubt",
        "node.crashes",
        "client.retries",
    ] {
        assert_eq!(ma.counter(key), mb.counter(key), "counter {key} diverged");
    }
    for acct in 0..ACCOUNTS {
        assert_eq!(a.item_entry(ItemId(acct)), b.item_entry(ItemId(acct)));
    }
}
