//! Robustness tests: the protocol must converge under lossy networks, slow
//! links, expired leases, and coordinator failures at every phase.

use pv_core::{Expr, ItemId, TransactionSpec, Value};
use pv_engine::{
    ClientConfig, Cluster, ClusterBuilder, CommitProtocol, Directory, EngineConfig,
    RandomTransfers, Script,
};
use pv_simnet::{NetConfig, NodeId, SimDuration, SimTime};

const ACCOUNTS: u64 = 12;
const INITIAL: i64 = 500;

fn transfer(from: u64, to: u64, amt: i64) -> TransactionSpec {
    let (f, t) = (ItemId(from), ItemId(to));
    TransactionSpec::new()
        .guard(Expr::read(f).ge(Expr::int(amt)))
        .update(f, Expr::read(f).sub(Expr::int(amt)))
        .update(t, Expr::read(t).add(Expr::int(amt)))
}

fn settle_and_check(cluster: &mut Cluster, until_secs: u64) {
    cluster.run_until(SimTime::from_secs(until_secs));
    assert_eq!(
        cluster.sum_items((0..ACCOUNTS).map(ItemId)).unwrap(),
        ACCOUNTS as i64 * INITIAL,
        "conservation violated"
    );
    assert_eq!(cluster.total_poly_count(), 0, "residual polyvalues");
    assert!(cluster.all_quiescent(), "protocol state lingering");
}

#[test]
fn lossy_network_converges_and_conserves() {
    // 5 % of every message silently dropped: lost Prepares, Decisions, and
    // OutcomeNotifies must all be healed by timeouts and inquiries.
    let mut cluster = ClusterBuilder::new(3, Directory::Mod(3))
        .seed(77)
        .net(NetConfig {
            drop_prob: 0.05,
            ..NetConfig::default()
        })
        .engine(EngineConfig::with_protocol(CommitProtocol::Polyvalue))
        .uniform_items(ACCOUNTS, INITIAL)
        .client(
            ClientConfig {
                record_results: false,
                ..ClientConfig::default()
            },
            Box::new(RandomTransfers::new(ACCOUNTS, 15.0, 40).with_limit(250)),
        )
        .build();
    settle_and_check(&mut cluster, 60);
    let m = cluster.world.metrics();
    assert!(m.counter("net.dropped_loss") > 0, "loss must have occurred");
    assert!(m.counter("txn.committed") > 100, "progress despite loss");
}

#[test]
fn very_lossy_network_still_never_violates_atomicity() {
    // 20 % loss: many transactions fail, but the ones that commit are atomic.
    let mut cluster = ClusterBuilder::new(3, Directory::Mod(3))
        .seed(78)
        .net(NetConfig {
            drop_prob: 0.20,
            ..NetConfig::default()
        })
        .engine(EngineConfig::with_protocol(CommitProtocol::Polyvalue))
        .uniform_items(ACCOUNTS, INITIAL)
        .client(
            ClientConfig {
                record_results: false,
                ..ClientConfig::default()
            },
            Box::new(RandomTransfers::new(ACCOUNTS, 10.0, 40).with_limit(150)),
        )
        .build();
    settle_and_check(&mut cluster, 90);
}

#[test]
fn slow_wan_with_scaled_timeouts_works() {
    // 30–80 ms one-way latency with timeouts scaled to match.
    let mut cluster = ClusterBuilder::new(3, Directory::Mod(3))
        .seed(79)
        .net(NetConfig {
            min_delay: SimDuration::from_millis(30),
            jitter: SimDuration::from_millis(50),
            ..NetConfig::default()
        })
        .engine(EngineConfig {
            read_timeout: SimDuration::from_millis(800),
            ready_timeout: SimDuration::from_millis(800),
            wait_timeout: SimDuration::from_millis(600),
            read_lease: SimDuration::from_secs(3),
            ..EngineConfig::with_protocol(CommitProtocol::Polyvalue)
        })
        .uniform_items(ACCOUNTS, INITIAL)
        .client(
            ClientConfig {
                record_results: false,
                ..ClientConfig::default()
            },
            Box::new(RandomTransfers::new(ACCOUNTS, 5.0, 40).with_limit(100)),
        )
        .build();
    settle_and_check(&mut cluster, 90);
    assert!(cluster.world.metrics().counter("txn.committed") > 60);
}

#[test]
fn expired_read_lease_forces_prepare_nack() {
    // A coordinator stalled by a partition during its read phase comes back
    // after the participant's lease expired; its Prepare must be refused,
    // not applied over stale reads.
    let mut cluster = ClusterBuilder::new(2, Directory::Mod(2))
        .seed(80)
        .net(NetConfig::instant())
        .engine(EngineConfig {
            // Coordinator far more patient than the participant's lease.
            read_timeout: SimDuration::from_secs(5),
            ready_timeout: SimDuration::from_secs(5),
            read_lease: SimDuration::from_millis(100),
            ..EngineConfig::with_protocol(CommitProtocol::Polyvalue)
        })
        .item(ItemId(0), Value::Int(INITIAL))
        .item(ItemId(1), Value::Int(INITIAL))
        .client(
            ClientConfig {
                max_retries: 0,
                ..ClientConfig::default()
            },
            Box::new(Script::new(
                vec![transfer(0, 1, 50)],
                SimDuration::from_millis(1),
            )),
        )
        .build();
    // Let the ReadReq reach site 1 and the ReadResp start back, then cut the
    // link so the coordinator's Prepare is delayed past the lease.
    let mut guard = 0;
    while cluster.world.metrics().counter("net.delivered") < 3 {
        let t = SimTime(cluster.world.now().as_micros() + 1);
        cluster.run_until(t);
        guard += 1;
        assert!(guard < 1_000_000);
    }
    let now = cluster.world.now();
    cluster.world.schedule_partition(now, NodeId(0), NodeId(1));
    cluster
        .world
        .schedule_heal(now + SimDuration::from_millis(500), NodeId(0), NodeId(1));
    cluster.run_until(SimTime::from_secs(10));
    // Either the coordinator's reads never completed (timeout abort) or the
    // Prepare was nacked after the expired lease — never a stale commit.
    assert_eq!(
        cluster.item_entry(ItemId(0)),
        Ok(pv_core::Entry::Simple(Value::Int(INITIAL)))
    );
    assert_eq!(
        cluster.item_entry(ItemId(1)),
        Ok(pv_core::Entry::Simple(Value::Int(INITIAL)))
    );
    assert_eq!(cluster.sum_items((0..2).map(ItemId)).unwrap(), 2 * INITIAL);
    assert!(cluster.all_quiescent());
}

#[test]
fn repeated_crashes_of_every_site_converge() {
    // Every site crashes twice during the run.
    let mut cluster = ClusterBuilder::new(3, Directory::Mod(3))
        .seed(81)
        .net(NetConfig::default())
        .engine(EngineConfig::with_protocol(CommitProtocol::Polyvalue))
        .uniform_items(ACCOUNTS, INITIAL)
        .client(
            ClientConfig {
                record_results: false,
                ..ClientConfig::default()
            },
            Box::new(RandomTransfers::new(ACCOUNTS, 15.0, 40).with_limit(200)),
        )
        .build();
    for s in 0..3u32 {
        for round in 0..2u64 {
            let at = SimTime::from_millis(1_000 + s as u64 * 1_500 + round * 5_000);
            cluster.world.schedule_crash(at, NodeId(s));
            cluster
                .world
                .schedule_recover(at + SimDuration::from_millis(700), NodeId(s));
        }
    }
    settle_and_check(&mut cluster, 60);
    assert_eq!(cluster.world.metrics().counter("node.crashes"), 6);
}

#[test]
fn duplicating_and_reordering_network_converges() {
    // 10 % of messages delivered twice and a 15 ms reorder window on top of
    // 2 % loss: duplicated Prepares, Decisions, and OutcomeNotifies must be
    // idempotent, and overtaking must not wedge the protocol.
    let mut cluster = ClusterBuilder::new(3, Directory::Mod(3))
        .seed(83)
        .net(NetConfig {
            drop_prob: 0.02,
            dup_prob: 0.10,
            reorder_window: SimDuration::from_millis(15),
            ..NetConfig::default()
        })
        .engine(EngineConfig::with_protocol(CommitProtocol::Polyvalue))
        .uniform_items(ACCOUNTS, INITIAL)
        .client(
            ClientConfig {
                record_results: false,
                ..ClientConfig::default()
            },
            Box::new(RandomTransfers::new(ACCOUNTS, 15.0, 40).with_limit(200)),
        )
        .build();
    settle_and_check(&mut cluster, 60);
    let m = cluster.world.metrics();
    assert!(m.counter("net.duplicated") > 0, "duplication must have occurred");
    assert!(m.counter("txn.committed") > 80, "progress despite duplication");
}

#[test]
fn duplicated_prepare_while_staged_is_answered_not_restaged() {
    // Forge a duplicate Prepare for a transaction the participant has
    // already staged-and-decided: the stale duplicate must be refused (the
    // lease is gone), and state must not change.
    let mut cluster = ClusterBuilder::new(2, Directory::Mod(2))
        .seed(84)
        .net(NetConfig::instant())
        .engine(EngineConfig::with_protocol(CommitProtocol::Polyvalue))
        .item(ItemId(0), Value::Int(INITIAL))
        .item(ItemId(1), Value::Int(INITIAL))
        .client(
            ClientConfig::default(),
            Box::new(Script::new(
                vec![transfer(0, 1, 50)],
                SimDuration::from_millis(1),
            )),
        )
        .build();
    cluster.run_until(SimTime::from_secs(1));
    let before1 = cluster.item_entry(ItemId(1));
    let txn = pv_engine::encode_txn(0, 0, 1);
    cluster.world.send_from_env(
        NodeId(1),
        pv_engine::Msg::Prepare {
            txn,
            writes: vec![(ItemId(1), pv_core::Entry::Simple(Value::Int(999)))],
        },
    );
    cluster.run_until(SimTime::from_secs(2));
    assert_eq!(cluster.item_entry(ItemId(1)), before1, "stale Prepare applied");
    assert_eq!(cluster.sum_items((0..2).map(ItemId)).unwrap(), 2 * INITIAL);
    assert!(cluster.all_quiescent());
}

#[test]
fn duplicate_decisions_and_notifies_are_idempotent() {
    // Run a normal commit, then replay its Decision and an OutcomeNotify at
    // the participant: state must not change.
    let mut cluster = ClusterBuilder::new(2, Directory::Mod(2))
        .seed(82)
        .net(NetConfig::instant())
        .engine(EngineConfig::with_protocol(CommitProtocol::Polyvalue))
        .item(ItemId(0), Value::Int(INITIAL))
        .item(ItemId(1), Value::Int(INITIAL))
        .client(
            ClientConfig::default(),
            Box::new(Script::new(
                vec![transfer(0, 1, 50)],
                SimDuration::from_millis(1),
            )),
        )
        .build();
    cluster.run_until(SimTime::from_secs(1));
    let before0 = cluster.item_entry(ItemId(0));
    let before1 = cluster.item_entry(ItemId(1));
    // Forge duplicates for a transaction id the coordinator actually used.
    let txn = pv_engine::encode_txn(0, 0, 1);
    cluster.world.send_from_env(
        NodeId(1),
        pv_engine::Msg::Decision {
            txn,
            completed: true,
        },
    );
    cluster.world.send_from_env(
        NodeId(1),
        pv_engine::Msg::OutcomeNotify {
            txn,
            completed: true,
        },
    );
    cluster.run_until(SimTime::from_secs(2));
    assert_eq!(cluster.item_entry(ItemId(0)), before0);
    assert_eq!(cluster.item_entry(ItemId(1)), before1);
    assert_eq!(cluster.sum_items((0..2).map(ItemId)).unwrap(), 2 * INITIAL);
}
