//! Property tests for the full engine: arbitrary transfer workloads and
//! failure schedules must preserve atomicity.
//!
//! Each case builds a cluster, runs a random scripted workload under random
//! crash/partition chaos, lets the system settle, and asserts the universal
//! invariants: money conserved exactly, no residual polyvalues, full
//! quiescence. Cases are few but each covers an entire distributed run.

use proptest::prelude::*;
use pv_core::{Expr, ItemId, TransactionSpec};
use pv_engine::{ClientConfig, ClusterBuilder, CommitProtocol, Directory, EngineConfig, Script};
use pv_simnet::{NetConfig, NodeId, SimDuration, SimTime};

const SITES: u32 = 3;
const ACCOUNTS: u64 = 9;
const INITIAL: i64 = 200;

#[derive(Debug, Clone)]
struct Chaos {
    crashes: Vec<(u32, u64, u64)>,         // (site, crash_ms, recover_ms)
    partitions: Vec<(u32, u32, u64, u64)>, // (a, b, cut_ms, heal_ms)
}

fn transfer_strategy() -> impl Strategy<Value = TransactionSpec> {
    (0..ACCOUNTS, 0..ACCOUNTS, 1i64..80).prop_map(|(from, to, amount)| {
        let to = if to == from { (to + 1) % ACCOUNTS } else { to };
        let (f, t) = (ItemId(from), ItemId(to));
        TransactionSpec::new()
            .guard(Expr::read(f).ge(Expr::int(amount)))
            .update(f, Expr::read(f).sub(Expr::int(amount)))
            .update(t, Expr::read(t).add(Expr::int(amount)))
    })
}

fn chaos_strategy() -> impl Strategy<Value = Chaos> {
    let crash =
        (0..SITES, 100u64..4000, 100u64..1500).prop_map(|(site, at, down)| (site, at, at + down));
    let partition = (0..SITES, 0..SITES, 100u64..4000, 100u64..1500).prop_map(|(a, b, at, dur)| {
        let b = if a == b { (b + 1) % SITES } else { b };
        (a, b, at, at + dur)
    });
    (
        prop::collection::vec(crash, 0..4),
        prop::collection::vec(partition, 0..4),
    )
        .prop_map(|(crashes, partitions)| Chaos {
            crashes,
            partitions,
        })
}

fn run_case(specs: Vec<TransactionSpec>, chaos: &Chaos, seed: u64) -> pv_engine::Cluster {
    let mut cluster = ClusterBuilder::new(SITES, Directory::Mod(SITES))
        .seed(seed)
        .net(NetConfig::default())
        .engine(EngineConfig::with_protocol(CommitProtocol::Polyvalue))
        .uniform_items(ACCOUNTS, INITIAL)
        .client(
            ClientConfig {
                record_results: false,
                ..ClientConfig::default()
            },
            Box::new(Script::new(specs, SimDuration::from_millis(40))),
        )
        .build();
    for &(site, crash_ms, recover_ms) in &chaos.crashes {
        cluster
            .world
            .schedule_crash(SimTime::from_millis(crash_ms), NodeId(site));
        cluster
            .world
            .schedule_recover(SimTime::from_millis(recover_ms), NodeId(site));
    }
    for &(a, b, cut_ms, heal_ms) in &chaos.partitions {
        cluster
            .world
            .schedule_partition(SimTime::from_millis(cut_ms), NodeId(a), NodeId(b));
        cluster
            .world
            .schedule_heal(SimTime::from_millis(heal_ms), NodeId(a), NodeId(b));
    }
    // Workload + chaos fit inside ~8 s; settle until 25 s.
    cluster.run_until(SimTime::from_secs(25));
    cluster
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Atomicity survives arbitrary transfer workloads and failure timing.
    #[test]
    fn any_workload_any_chaos_conserves_money(
        specs in prop::collection::vec(transfer_strategy(), 1..60),
        chaos in chaos_strategy(),
        seed in 0u64..1_000,
    ) {
        let cluster = run_case(specs, &chaos, seed);
        prop_assert_eq!(
            cluster.sum_items((0..ACCOUNTS).map(ItemId)).unwrap(),
            ACCOUNTS as i64 * INITIAL,
            "conservation violated"
        );
        prop_assert_eq!(cluster.total_poly_count(), 0, "residual polyvalues");
        prop_assert!(cluster.all_quiescent(), "protocol state lingering");
        prop_assert_eq!(cluster.world.metrics().counter("relaxed.violations"), 0);
    }

    /// The same case is bit-for-bit reproducible.
    #[test]
    fn cases_are_deterministic(
        specs in prop::collection::vec(transfer_strategy(), 1..20),
        chaos in chaos_strategy(),
        seed in 0u64..1_000,
    ) {
        let a = run_case(specs.clone(), &chaos, seed);
        let b = run_case(specs, &chaos, seed);
        for account in 0..ACCOUNTS {
            prop_assert_eq!(
                a.item_entry(ItemId(account)),
                b.item_entry(ItemId(account))
            );
        }
        prop_assert_eq!(
            a.world.metrics().counter("txn.committed"),
            b.world.metrics().counter("txn.committed")
        );
    }
}
