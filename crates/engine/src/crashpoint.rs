//! Exhaustive crash-point exploration: FoundationDB-style recovery testing.
//!
//! The simulation is deterministic under a seed, and a site's stable-storage
//! write activity is fully described by its WAL append counter
//! ([`pv_store::SiteStore::append_seq`], which counts every record ever
//! appended and is never reset by compaction). That gives each site a precise
//! coordinate system for crashes: "the first moment site `s` has appended
//! `k` records".
//!
//! The harness runs a scripted multi-site transfer scenario once, recording
//! every append count each site reaches at an actor-callback boundary. Then,
//! for every one of those points, it re-runs the *same seeded scenario* from
//! scratch, crashes the site the first time it reaches the point, recovers
//! it shortly after, lets the system settle, and asserts the tier-1
//! invariants:
//!
//! * **conservation** — the transfer workload's total balance is unchanged;
//! * **no residual polyvalues** — every in-doubt outcome was resolved;
//! * **quiescence** — no protocol state is left in flight anywhere.
//!
//! Because each exploration replays the identical event schedule up to the
//! crash, the harness is reproducible: a reported violation names the seed,
//! site, and append point needed to replay it exactly.
//!
//! The fsync policy is part of the search space. Under
//! [`FsyncPolicy::PerDecision`] (or the even laxer
//! [`FsyncPolicy::EveryN`]) a crash loses un-synced background records —
//! applied writes, dependency bookkeeping — and recovery must heal the gap
//! through replay, re-staging, and the §3.3 inquiry protocol.

use crate::client::ClientConfig;
use crate::cluster::{Cluster, ClusterBuilder};
use crate::config::{CommitProtocol, EngineConfig};
use crate::directory::Directory;
use crate::site::site_node;
use crate::workload::RandomTransfers;
use pv_core::ItemId;
use pv_simnet::{NetConfig, SimDuration, SimTime};
use pv_store::{FsyncPolicy, MemStorage, SiteId};
use std::collections::BTreeSet;
use std::fmt;

/// Parameters of one crash-point exploration.
#[derive(Debug, Clone)]
pub struct CrashPointConfig {
    /// The scenario seed; every exploration replays this exact schedule.
    pub seed: u64,
    /// Number of sites (items are placed modulo this).
    pub sites: u32,
    /// Number of accounts in the transfer workload.
    pub accounts: u64,
    /// Initial balance per account (conservation target).
    pub initial: i64,
    /// Number of transfers the scripted client issues.
    pub transfers: u64,
    /// Client arrival rate (transfers per virtual second).
    pub rate_per_sec: f64,
    /// The fsync policy every site's storage runs under.
    pub policy: FsyncPolicy,
    /// Virtual seconds to let each crashed run settle before checking.
    pub settle_secs: u64,
    /// How long a crashed site stays down.
    pub recover_after: SimDuration,
    /// Caps the points explored per site (evenly sampled); `None` explores
    /// every reachable point.
    pub max_points_per_site: Option<usize>,
    /// The commit protocol the scenario runs under. Paxos Commit exercises a
    /// different durability surface — per-acceptor vote/promise/accept
    /// records — whose replay the sweep must also cover.
    pub protocol: CommitProtocol,
    /// Keyspace memtable flush threshold (entries per partition). The
    /// default is deliberately tiny so the scenario forces frequent
    /// memtable flushes, making the LSM coordinate space dense.
    pub memtable_threshold: usize,
    /// Keyspace run count that triggers a size-tiered compaction. Tiny by
    /// default so the sweep reaches compaction-in-flight crash points.
    pub run_threshold: usize,
}

impl Default for CrashPointConfig {
    fn default() -> Self {
        CrashPointConfig {
            seed: 0xC8A5,
            sites: 3,
            accounts: 12,
            initial: 500,
            transfers: 30,
            rate_per_sec: 15.0,
            policy: FsyncPolicy::PerDecision,
            settle_secs: 90,
            recover_after: SimDuration::from_millis(700),
            max_points_per_site: None,
            protocol: CommitProtocol::Polyvalue,
            memtable_threshold: 2,
            run_threshold: 2,
        }
    }
}

/// One crash coordinate: a point in a site's stable-storage activity where
/// a crash can be injected reproducibly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CrashCoord {
    /// "The first moment the site has appended `k` WAL records"
    /// ([`pv_store::SiteStore::append_seq`]).
    Append(u64),
    /// "The first moment the site's keyspace has completed `k` LSM
    /// operations" — memtable flushes and size-tiered compactions
    /// ([`pv_store::SiteStore::lsm_op_seq`]). Crashing here strikes just
    /// after a flush or compaction rewired the partition's runs, the
    /// window where a non-derived store would be most fragile.
    LsmOp(u64),
}

impl fmt::Display for CrashCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrashCoord::Append(k) => write!(f, "append {k}"),
            CrashCoord::LsmOp(k) => write!(f, "lsm_op {k}"),
        }
    }
}

/// One invariant violation found at a crash point.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The crashed site.
    pub site: SiteId,
    /// The crash coordinate the crash was injected at.
    pub point: CrashCoord,
    /// What went wrong.
    pub what: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site {} @ {}: {}", self.site, self.point, self.what)
    }
}

/// The outcome of an exploration.
#[derive(Debug, Clone)]
pub struct CrashPointReport {
    /// Total crash points explored across all sites (both coordinate kinds).
    pub points_explored: usize,
    /// WAL append points explored per site.
    pub points_per_site: Vec<usize>,
    /// LSM flush/compaction points explored per site.
    pub lsm_points_per_site: Vec<usize>,
    /// Every invariant violation found (empty on a clean pass).
    pub violations: Vec<Violation>,
}

impl CrashPointReport {
    /// Whether every crash point recovered without violating an invariant.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for CrashPointReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} crash points (append {}, lsm {}), {} violation(s)",
            self.points_explored,
            self.points_per_site
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join("+"),
            self.lsm_points_per_site
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join("+"),
            self.violations.len()
        )
    }
}

/// Builds the scenario cluster: `sites` sites over policy-governed in-memory
/// storage, one client issuing random guarded transfers.
fn build(cfg: &CrashPointConfig) -> Cluster {
    let policy = cfg.policy;
    let engine = EngineConfig {
        memtable_threshold: cfg.memtable_threshold,
        run_threshold: cfg.run_threshold,
        ..EngineConfig::with_protocol(cfg.protocol)
    };
    ClusterBuilder::new(cfg.sites, Directory::Mod(cfg.sites))
        .seed(cfg.seed)
        .net(NetConfig::default())
        .engine(engine)
        .uniform_items(cfg.accounts, cfg.initial)
        .storage(move |_| Box::new(MemStorage::with_policy(policy)))
        .client(
            ClientConfig {
                record_results: false,
                ..ClientConfig::default()
            },
            Box::new(
                RandomTransfers::new(cfg.accounts, cfg.rate_per_sec, 40)
                    .with_limit(cfg.transfers),
            ),
        )
        .build()
}

/// Runs the scenario once with no crashes and returns, per site, every WAL
/// append count observable at an actor-callback boundary. (A callback can
/// append several records at once; a crash can only strike between
/// callbacks, so these are exactly the reachable crash states.)
pub fn enumerate_points(cfg: &CrashPointConfig) -> Vec<BTreeSet<u64>> {
    enumerate_by(cfg, |store| store.append_seq())
}

/// Like [`enumerate_points`], but over the keyspace's LSM operation counter:
/// every flush/compaction count each site reaches at a callback boundary.
/// Crashing at these coordinates strikes right after a memtable flush or a
/// size-tiered compaction completed — recovery must rebuild the keyspace
/// from the WAL regardless of what the run set looked like.
pub fn enumerate_lsm_points(cfg: &CrashPointConfig) -> Vec<BTreeSet<u64>> {
    enumerate_by(cfg, |store| store.lsm_op_seq())
}

fn enumerate_by(
    cfg: &CrashPointConfig,
    seq: impl Fn(&pv_store::SiteStore) -> u64,
) -> Vec<BTreeSet<u64>> {
    let mut cluster = build(cfg);
    let mut points: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); cfg.sites as usize];
    let horizon = SimTime::from_secs(cfg.settle_secs);
    let sample = |cluster: &Cluster, points: &mut Vec<BTreeSet<u64>>| {
        for s in 0..cfg.sites {
            let n = seq(cluster.site(s as SiteId).expect("site ids in range").store());
            if n > 0 {
                points[s as usize].insert(n);
            }
        }
    };
    sample(&cluster, &mut points);
    while cluster.world.now() <= horizon && cluster.world.step() {
        sample(&cluster, &mut points);
    }
    points
}

/// Replays the scenario, crashes `site` the first time it reaches the crash
/// coordinate `point`, recovers it, settles, and checks invariants.
fn crash_at(cfg: &CrashPointConfig, site: SiteId, point: CrashCoord) -> Option<Violation> {
    let mut cluster = build(cfg);
    let reached = |c: &Cluster| {
        let store = c.site(site).expect("site ids in range").store();
        match point {
            CrashCoord::Append(k) => store.append_seq() >= k,
            CrashCoord::LsmOp(k) => store.lsm_op_seq() >= k,
        }
    };
    while !reached(&cluster) {
        if !cluster.world.step() {
            return Some(Violation {
                site,
                point,
                what: "crash point unreachable on replay (determinism broken?)".into(),
            });
        }
    }
    let now = cluster.world.now();
    cluster.world.schedule_crash(now, site_node(site));
    cluster
        .world
        .schedule_recover(now + cfg.recover_after, site_node(site));
    cluster.run_until(SimTime::from_secs(cfg.settle_secs));
    if cluster.world.metrics().counter("node.crashes") != 1 {
        return Some(Violation {
            site,
            point,
            what: "harness error: crash was never delivered".into(),
        });
    }
    check_invariants(&cluster, cfg, site, point)
}

/// The tier-1 invariants every settled post-crash run must satisfy.
fn check_invariants(
    cluster: &Cluster,
    cfg: &CrashPointConfig,
    site: SiteId,
    point: CrashCoord,
) -> Option<Violation> {
    let expected = cfg.accounts as i64 * cfg.initial;
    let fail = |what: String| Some(Violation { site, point, what });
    match cluster.sum_items((0..cfg.accounts).map(ItemId)) {
        Ok(total) if total == expected => {}
        Ok(total) => return fail(format!("conservation violated: {total} != {expected}")),
        Err(e) => return fail(format!("item unreadable or polyvalued after settle: {e:?}")),
    }
    if cluster.total_poly_count() != 0 {
        return fail(format!(
            "{} residual polyvalued item(s)",
            cluster.total_poly_count()
        ));
    }
    if !cluster.all_quiescent() {
        return fail("protocol state still in flight".into());
    }
    for s in 0..cfg.sites {
        let residual = cluster
            .site(s as SiteId)
            .expect("site ids in range")
            .store()
            .pc_txns()
            .len();
        if residual != 0 {
            // Paxos Commit acceptor state must be pruned once the decision
            // is durable everywhere; leftovers mean a vote/promise survived
            // recovery without its transaction ever resolving.
            return fail(format!(
                "{residual} unresolved Paxos Commit acceptor record(s) at site {s}"
            ));
        }
    }
    None
}

/// Explores every enumerated crash point (or an even sample capped by
/// `max_points_per_site`) and reports all violations found.
pub fn explore(cfg: &CrashPointConfig) -> CrashPointReport {
    let mut violations = Vec::new();
    let mut points_explored = 0;
    let mut sweep = |points: &[BTreeSet<u64>], coord: fn(u64) -> CrashCoord| {
        let mut per_site = Vec::with_capacity(points.len());
        for (s, set) in points.iter().enumerate() {
            let all: Vec<u64> = set.iter().copied().collect();
            let chosen: Vec<u64> = match cfg.max_points_per_site {
                Some(cap) if all.len() > cap && cap > 0 => {
                    (0..cap).map(|i| all[i * all.len() / cap]).collect()
                }
                _ => all,
            };
            per_site.push(chosen.len());
            for &point in &chosen {
                points_explored += 1;
                if let Some(v) = crash_at(cfg, s as SiteId, coord(point)) {
                    violations.push(v);
                }
            }
        }
        per_site
    };
    let points_per_site = sweep(&enumerate_points(cfg), CrashCoord::Append);
    let lsm_points_per_site = sweep(&enumerate_lsm_points(cfg), CrashCoord::LsmOp);
    CrashPointReport {
        points_explored,
        points_per_site,
        lsm_points_per_site,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny exploration used for unit coverage; the full harness runs in
    /// `tests/engine_crashpoints.rs`.
    fn tiny() -> CrashPointConfig {
        CrashPointConfig {
            sites: 2,
            accounts: 4,
            transfers: 4,
            settle_secs: 30,
            max_points_per_site: Some(3),
            ..CrashPointConfig::default()
        }
    }

    #[test]
    fn enumerates_nonempty_point_sets_per_site() {
        let cfg = tiny();
        let points = enumerate_points(&cfg);
        assert_eq!(points.len(), 2);
        for set in &points {
            // Seeding alone appends records, so every site has points.
            assert!(!set.is_empty());
        }
    }

    #[test]
    fn enumeration_is_deterministic() {
        let cfg = tiny();
        assert_eq!(enumerate_points(&cfg), enumerate_points(&cfg));
    }

    #[test]
    fn tiny_exploration_is_clean() {
        let report = explore(&tiny());
        assert!(report.points_explored > 0);
        assert_eq!(report.points_per_site.len(), 2);
        assert_eq!(report.lsm_points_per_site.len(), 2);
        let text = report.to_string();
        assert!(text.contains("violation"), "report: {text}");
        assert!(report.ok(), "violations: {:?}", report.violations);
    }

    #[test]
    fn tiny_thresholds_reach_lsm_crash_points() {
        // The default thresholds are small enough that even the tiny
        // scenario flushes memtables, giving the LSM sweep a real space.
        let points = enumerate_lsm_points(&tiny());
        assert!(
            points.iter().any(|set| !set.is_empty()),
            "no site ever flushed or compacted: {points:?}"
        );
    }

    #[test]
    fn tiny_paxos_commit_exploration_is_clean() {
        let report = explore(&CrashPointConfig {
            protocol: CommitProtocol::PaxosCommit,
            ..tiny()
        });
        assert!(report.points_explored > 0);
        assert!(report.ok(), "violations: {:?}", report.violations);
    }

    #[test]
    fn violation_display_names_the_coordinates() {
        let v = Violation {
            site: 1,
            point: CrashCoord::Append(42),
            what: "example".into(),
        };
        assert_eq!(v.to_string(), "site 1 @ append 42: example");
        let v = Violation {
            site: 0,
            point: CrashCoord::LsmOp(3),
            what: "example".into(),
        };
        assert_eq!(v.to_string(), "site 0 @ lsm_op 3: example");
    }
}
