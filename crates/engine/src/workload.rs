//! Workload generators driving clients.

use pv_core::{Expr, ItemId, TransactionSpec};
use pv_simnet::{SimDuration, SimRng};

/// A source of transactions for one client.
pub trait Workload {
    /// The next transaction and the delay before submitting it, or `None`
    /// when the workload is exhausted.
    fn next(&mut self, rng: &mut SimRng) -> Option<(TransactionSpec, SimDuration)>;
}

/// A fixed list of transactions submitted at fixed intervals (tests and
/// scripted scenarios).
#[derive(Debug, Clone)]
pub struct Script {
    specs: Vec<TransactionSpec>,
    interval: SimDuration,
    next: usize,
}

impl Script {
    /// Builds a script that submits `specs` in order, one every `interval`.
    pub fn new(specs: Vec<TransactionSpec>, interval: SimDuration) -> Self {
        Script {
            specs,
            interval,
            next: 0,
        }
    }
}

impl Workload for Script {
    fn next(&mut self, _rng: &mut SimRng) -> Option<(TransactionSpec, SimDuration)> {
        let spec = self.specs.get(self.next)?.clone();
        self.next += 1;
        Some((spec, self.interval))
    }
}

/// The engine-level mirror of the paper's §4.2 workload: transactions arrive
/// as a Poisson process of rate `rate_per_sec`; each updates one uniformly
/// random item with a value depending on `d ~ Exp(mean_deps)` other random
/// items, and includes the item's previous value with probability
/// `1 − y_prob` (the paper's `Y`).
#[derive(Debug, Clone)]
pub struct UniformRmw {
    /// Total number of items (`I`).
    pub items: u64,
    /// Arrival rate per second (`U` for a single client).
    pub rate_per_sec: f64,
    /// Mean number of items the new value depends on (`D`).
    pub mean_deps: f64,
    /// Probability the new value ignores the previous value (`Y`).
    pub y_prob: f64,
    /// Stop after this many transactions (`None` = unbounded).
    pub limit: Option<u64>,
    issued: u64,
}

impl UniformRmw {
    /// Builds the workload; see the field docs for the paper correspondence.
    pub fn new(items: u64, rate_per_sec: f64, mean_deps: f64, y_prob: f64) -> Self {
        assert!(items > 0 && rate_per_sec > 0.0);
        UniformRmw {
            items,
            rate_per_sec,
            mean_deps,
            y_prob,
            limit: None,
            issued: 0,
        }
    }

    /// Caps the number of transactions generated.
    pub fn with_limit(mut self, limit: u64) -> Self {
        self.limit = Some(limit);
        self
    }
}

impl Workload for UniformRmw {
    fn next(&mut self, rng: &mut SimRng) -> Option<(TransactionSpec, SimDuration)> {
        if let Some(limit) = self.limit {
            if self.issued >= limit {
                return None;
            }
        }
        self.issued += 1;
        let target = ItemId(rng.below(self.items));
        // d dependencies, exponentially distributed with mean D (rounded).
        let d = rng.exponential(self.mean_deps).round() as u64;
        let mut expr = if rng.chance(self.y_prob) {
            // New value independent of the previous one.
            Expr::int(rng.below(1000) as i64)
        } else {
            Expr::read(target)
        };
        for _ in 0..d.min(8) {
            let dep = ItemId(rng.below(self.items));
            expr = expr.add(Expr::read(dep));
        }
        let spec = TransactionSpec::new().update(target, expr);
        let gap = SimDuration::from_secs_f64(rng.exponential(1.0 / self.rate_per_sec));
        Some((spec, gap))
    }
}

/// Random funds transfers between `accounts` accounts: the §5 electronic
/// funds transfer workload. Each transfer moves a random amount between two
/// distinct random accounts, guarded by sufficient funds.
#[derive(Debug, Clone)]
pub struct RandomTransfers {
    /// Number of accounts (items `0..accounts`).
    pub accounts: u64,
    /// Arrival rate per second.
    pub rate_per_sec: f64,
    /// Transfers move `1..=max_amount`.
    pub max_amount: i64,
    /// Stop after this many transfers (`None` = unbounded).
    pub limit: Option<u64>,
    issued: u64,
}

impl RandomTransfers {
    /// Builds the workload.
    pub fn new(accounts: u64, rate_per_sec: f64, max_amount: i64) -> Self {
        assert!(accounts >= 2 && rate_per_sec > 0.0 && max_amount >= 1);
        RandomTransfers {
            accounts,
            rate_per_sec,
            max_amount,
            limit: None,
            issued: 0,
        }
    }

    /// Caps the number of transfers generated.
    pub fn with_limit(mut self, limit: u64) -> Self {
        self.limit = Some(limit);
        self
    }

    /// The transfer spec itself (also used by the apps crate).
    pub fn transfer_spec(from: ItemId, to: ItemId, amount: i64) -> TransactionSpec {
        TransactionSpec::new()
            .guard(Expr::read(from).ge(Expr::int(amount)))
            .update(from, Expr::read(from).sub(Expr::int(amount)))
            .update(to, Expr::read(to).add(Expr::int(amount)))
            .output("granted", Expr::read(from).ge(Expr::int(amount)))
    }
}

impl Workload for RandomTransfers {
    fn next(&mut self, rng: &mut SimRng) -> Option<(TransactionSpec, SimDuration)> {
        if let Some(limit) = self.limit {
            if self.issued >= limit {
                return None;
            }
        }
        self.issued += 1;
        let from = rng.below(self.accounts);
        let mut to = rng.below(self.accounts);
        if to == from {
            to = (to + 1) % self.accounts;
        }
        let amount = 1 + rng.below(self.max_amount as u64) as i64;
        let spec = RandomTransfers::transfer_spec(ItemId(from), ItemId(to), amount);
        let gap = SimDuration::from_secs_f64(rng.exponential(1.0 / self.rate_per_sec));
        Some((spec, gap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_replays_in_order_then_ends() {
        let a = TransactionSpec::new().update(ItemId(1), Expr::int(1));
        let b = TransactionSpec::new().update(ItemId(2), Expr::int(2));
        let mut s = Script::new(vec![a.clone(), b.clone()], SimDuration::from_secs(1));
        let mut rng = SimRng::new(1);
        assert_eq!(s.next(&mut rng).unwrap().0, a);
        assert_eq!(s.next(&mut rng).unwrap().0, b);
        assert!(s.next(&mut rng).is_none());
    }

    #[test]
    fn uniform_rmw_targets_valid_items() {
        let mut w = UniformRmw::new(100, 10.0, 2.0, 0.5);
        let mut rng = SimRng::new(2);
        for _ in 0..200 {
            let (spec, gap) = w.next(&mut rng).unwrap();
            assert_eq!(spec.updates.len(), 1);
            let (item, _) = &spec.updates[0];
            assert!(item.0 < 100);
            assert!(gap > SimDuration::ZERO);
            for read in spec.read_set() {
                assert!(read.0 < 100);
            }
        }
    }

    #[test]
    fn limit_caps_generation() {
        let mut w = UniformRmw::new(10, 1.0, 1.0, 0.0).with_limit(3);
        let mut rng = SimRng::new(3);
        assert!(w.next(&mut rng).is_some());
        assert!(w.next(&mut rng).is_some());
        assert!(w.next(&mut rng).is_some());
        assert!(w.next(&mut rng).is_none());
    }

    #[test]
    fn y_zero_always_reads_previous_value() {
        let mut w = UniformRmw::new(10, 1.0, 0.0, 0.0);
        let mut rng = SimRng::new(4);
        for _ in 0..50 {
            let (spec, _) = w.next(&mut rng).unwrap();
            let (item, _) = &spec.updates[0];
            assert!(
                spec.read_set().contains(item),
                "with Y=0 the update must read the target"
            );
        }
    }

    #[test]
    fn y_one_never_reads_previous_value_with_zero_deps() {
        let mut w = UniformRmw::new(10, 1.0, 0.0, 1.0);
        let mut rng = SimRng::new(5);
        let mut sum = 0;
        for _ in 0..50 {
            let (spec, _) = w.next(&mut rng).unwrap();
            let (item, _) = &spec.updates[0];
            sum += usize::from(spec.read_set().contains(item));
        }
        // d is exponential with mean 0, so it is always 0 reads of target.
        assert_eq!(sum, 0);
    }

    #[test]
    fn random_transfers_are_well_formed() {
        let mut w = RandomTransfers::new(10, 5.0, 20).with_limit(100);
        let mut rng = SimRng::new(9);
        let mut n = 0;
        while let Some((spec, _)) = w.next(&mut rng) {
            n += 1;
            let writes: Vec<u64> = spec.write_set().into_iter().map(|i| i.0).collect();
            assert_eq!(writes.len(), 2, "distinct from/to");
            assert!(writes.iter().all(|&i| i < 10));
            assert!(spec.guard.is_some());
        }
        assert_eq!(n, 100);
    }

    #[test]
    fn mean_gap_tracks_rate() {
        let mut w = UniformRmw::new(10, 50.0, 1.0, 0.0);
        let mut rng = SimRng::new(6);
        let n = 2000;
        let total: f64 = (0..n)
            .map(|_| w.next(&mut rng).unwrap().1.as_secs_f64())
            .sum();
        let mean = total / n as f64;
        assert!((mean - 0.02).abs() < 0.005, "mean gap {mean}");
    }
}
