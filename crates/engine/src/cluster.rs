//! Cluster assembly: sites + clients in one simulated world.

use crate::client::{Client, ClientConfig};
use crate::config::EngineConfig;
use crate::directory::Directory;
use crate::messages::Msg;
use crate::site::{site_node, Site};
use crate::workload::Workload;
use pv_core::{Entry, ItemId, Value};
use pv_simnet::{NetConfig, NodeId, SimTime, World};
use pv_store::SiteId;

/// The node type of an engine world: either a database site or a client.
pub enum Node {
    /// A database site.
    Site(Box<Site>),
    /// A workload client.
    Client(Box<Client>),
}

impl pv_simnet::Actor for Node {
    type Msg = Msg;

    fn on_start(&mut self, ctx: &mut pv_simnet::Ctx<Msg>) {
        match self {
            Node::Site(s) => s.on_start(ctx),
            Node::Client(c) => c.on_start(ctx),
        }
    }

    fn on_message(&mut self, ctx: &mut pv_simnet::Ctx<Msg>, from: NodeId, msg: Msg) {
        match self {
            Node::Site(s) => s.on_message(ctx, from, msg),
            Node::Client(c) => c.on_message(ctx, from, msg),
        }
    }

    fn on_timer(&mut self, ctx: &mut pv_simnet::Ctx<Msg>, key: u64) {
        match self {
            Node::Site(s) => s.on_timer(ctx, key),
            Node::Client(c) => c.on_timer(ctx, key),
        }
    }

    fn on_crash(&mut self) {
        match self {
            Node::Site(s) => s.on_crash(),
            Node::Client(c) => c.on_crash(),
        }
    }

    fn on_recover(&mut self, ctx: &mut pv_simnet::Ctx<Msg>) {
        match self {
            Node::Site(s) => s.on_recover(ctx),
            Node::Client(c) => c.on_recover(ctx),
        }
    }
}

/// Builder for a simulated cluster.
pub struct ClusterBuilder {
    seed: u64,
    net: NetConfig,
    engine: EngineConfig,
    sites: u32,
    directory: Directory,
    items: Vec<(ItemId, Value)>,
    clients: Vec<(ClientConfig, Box<dyn Workload>)>,
}

impl ClusterBuilder {
    /// Starts a builder for `sites` sites placed by `directory`.
    pub fn new(sites: u32, directory: Directory) -> Self {
        assert!(sites > 0);
        ClusterBuilder {
            seed: 0,
            net: NetConfig::default(),
            engine: EngineConfig::default(),
            sites,
            directory,
            items: Vec::new(),
            clients: Vec::new(),
        }
    }

    /// Sets the random seed (runs are reproducible per seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the network model.
    pub fn net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Sets the engine configuration (protocol, timeouts).
    pub fn engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Seeds an initial item value (placed by the directory).
    pub fn item(mut self, item: ItemId, value: Value) -> Self {
        self.items.push((item, value));
        self
    }

    /// Seeds items `0..n` with the same integer value.
    pub fn uniform_items(mut self, n: u64, value: i64) -> Self {
        for i in 0..n {
            self.items.push((ItemId(i), Value::Int(value)));
        }
        self
    }

    /// Adds a client driven by `workload`.
    pub fn client(mut self, config: ClientConfig, workload: Box<dyn Workload>) -> Self {
        self.clients.push((config, workload));
        self
    }

    /// Builds the world: sites first (node ids `0..sites`), then clients.
    pub fn build(self) -> Cluster {
        let mut world = World::new(self.seed, self.net);
        for s in 0..self.sites {
            let mut site = Site::new(s as SiteId, self.engine.clone(), self.directory.clone());
            for (item, value) in &self.items {
                if self.directory.site_of(*item) == Some(s as SiteId) {
                    site.seed_item(*item, value.clone());
                }
            }
            let id = world.add_node(Node::Site(Box::new(site)));
            debug_assert_eq!(id, site_node(s as SiteId));
        }
        let mut client_nodes = Vec::with_capacity(self.clients.len());
        for (config, workload) in self.clients {
            let client = Client::new(config, self.directory.clone(), self.sites, workload);
            client_nodes.push(world.add_node(Node::Client(Box::new(client))));
        }
        Cluster {
            world,
            sites: self.sites,
            client_nodes,
            directory: self.directory,
        }
    }
}

/// A running simulated cluster.
pub struct Cluster {
    /// The underlying simulation world (exposed for failure injection and
    /// fine-grained control).
    pub world: World<Node>,
    sites: u32,
    client_nodes: Vec<NodeId>,
    directory: Directory,
}

impl Cluster {
    /// Number of sites.
    pub fn site_count(&self) -> u32 {
        self.sites
    }

    /// The node ids of the clients, in the order they were added.
    pub fn client_nodes(&self) -> &[NodeId] {
        &self.client_nodes
    }

    /// Immutable access to a site.
    pub fn site(&self, s: SiteId) -> &Site {
        match self.world.actor(site_node(s)) {
            Node::Site(site) => site,
            Node::Client(_) => panic!("node {s} is a client"),
        }
    }

    /// Immutable access to a client by index.
    pub fn client(&self, idx: usize) -> &Client {
        match self.world.actor(self.client_nodes[idx]) {
            Node::Client(c) => c,
            Node::Site(_) => panic!("client index {idx} resolves to a site"),
        }
    }

    /// Runs the simulation until virtual time `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.world.run_until(t);
    }

    /// Total number of items holding polyvalues across all sites — the
    /// paper's `P(t)` for the engine-level system.
    pub fn total_poly_count(&self) -> usize {
        (0..self.sites)
            .map(|s| self.site(s as SiteId).poly_count())
            .sum()
    }

    /// Samples the polyvalue census into the metrics gauge `poly.count`.
    pub fn sample_poly_gauge(&mut self) {
        let now = self.world.now();
        let count = self.total_poly_count() as f64;
        self.world.metrics_mut().gauge("poly.count", now, count);
    }

    /// The current entry of an item, wherever it lives.
    pub fn item_entry(&self, item: ItemId) -> Option<Entry<Value>> {
        let site = self.directory.site_of(item)?;
        self.site(site).store().get(item).cloned()
    }

    /// Whether every site is fully quiescent: no in-flight protocol state,
    /// no staged transactions, no tracked outcomes.
    pub fn all_quiescent(&self) -> bool {
        (0..self.sites).all(|s| self.site(s as SiteId).is_quiescent())
    }

    /// Sums an integer item range (consistency checks, e.g. conservation of
    /// money). Panics if any item is missing or uncertain.
    pub fn sum_items(&self, items: impl Iterator<Item = ItemId>) -> i64 {
        items
            .map(|item| {
                let entry = self
                    .item_entry(item)
                    .unwrap_or_else(|| panic!("missing {item}"));
                match entry {
                    Entry::Simple(Value::Int(n)) => n,
                    other => panic!("{item} is not a simple int: {other}"),
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Script;
    use pv_simnet::SimDuration;

    #[test]
    fn builder_places_items_by_directory() {
        let cluster = ClusterBuilder::new(3, Directory::Mod(3))
            .uniform_items(9, 7)
            .build();
        for s in 0..3u32 {
            assert_eq!(cluster.site(s).store().item_count(), 3);
        }
        assert_eq!(
            cluster.item_entry(ItemId(4)),
            Some(Entry::Simple(Value::Int(7)))
        );
        assert_eq!(cluster.sum_items((0..9).map(ItemId)), 63);
        assert!(cluster.all_quiescent());
        assert_eq!(cluster.total_poly_count(), 0);
        assert_eq!(cluster.site_count(), 3);
    }

    #[test]
    fn clients_are_added_after_sites() {
        let cluster = ClusterBuilder::new(2, Directory::Mod(2))
            .client(
                ClientConfig::default(),
                Box::new(Script::new(vec![], SimDuration::from_millis(1))),
            )
            .build();
        assert_eq!(cluster.client_nodes(), &[NodeId(2)]);
        assert_eq!(cluster.client(0).outstanding_count(), 0);
    }

    #[test]
    #[should_panic(expected = "is a client")]
    fn site_accessor_rejects_clients() {
        let cluster = ClusterBuilder::new(1, Directory::Mod(1))
            .client(
                ClientConfig::default(),
                Box::new(Script::new(vec![], SimDuration::from_millis(1))),
            )
            .build();
        let _ = cluster.site(1);
    }
}
