//! Cluster assembly: sites + clients in one simulated world.

use crate::client::{Client, ClientConfig};
use crate::config::EngineConfig;
use crate::directory::Directory;
use crate::error::EngineError;
use crate::messages::Msg;
use crate::site::{site_node, Site};
use crate::topology::Topology;
use crate::workload::Workload;
use pv_core::{Entry, ItemId, Value};
use pv_simnet::{NetConfig, NodeId, SimTime, Trace, TraceSink, World};
use pv_store::{DiskWal, SiteId, SiteStore, Storage};

/// The node type of an engine world: either a database site or a client.
pub enum Node {
    /// A database site.
    Site(Box<Site>),
    /// A workload client.
    Client(Box<Client>),
}

impl pv_simnet::Actor for Node {
    type Msg = Msg;

    fn on_start(&mut self, ctx: &mut pv_simnet::Ctx<Msg>) {
        match self {
            Node::Site(s) => s.on_start(ctx),
            Node::Client(c) => c.on_start(ctx),
        }
    }

    fn on_message(&mut self, ctx: &mut pv_simnet::Ctx<Msg>, from: NodeId, msg: Msg) {
        match self {
            Node::Site(s) => s.on_message(ctx, from, msg),
            Node::Client(c) => c.on_message(ctx, from, msg),
        }
    }

    fn on_timer(&mut self, ctx: &mut pv_simnet::Ctx<Msg>, key: u64) {
        match self {
            Node::Site(s) => s.on_timer(ctx, key),
            Node::Client(c) => c.on_timer(ctx, key),
        }
    }

    fn on_crash(&mut self) {
        match self {
            Node::Site(s) => s.on_crash(),
            Node::Client(c) => c.on_crash(),
        }
    }

    fn on_recover(&mut self, ctx: &mut pv_simnet::Ctx<Msg>) {
        match self {
            Node::Site(s) => s.on_recover(ctx),
            Node::Client(c) => c.on_recover(ctx),
        }
    }
}

/// A per-site factory for pluggable storage backends.
type StorageFactory = Box<dyn Fn(SiteId) -> Box<dyn Storage>>;

/// Builder for a simulated cluster.
///
/// The cluster *shape* — sites, placement, protocol, items, durability —
/// lives in a [`Topology`], the configuration type shared with the live and
/// networked runtimes; this builder adds what only the simulation has: a
/// seed, a network model, simulated clients, and pluggable storage backends.
/// Start from [`ClusterBuilder::from_topology`] to run a description that
/// also deploys on `LiveCluster` / `pv-net`, or from [`ClusterBuilder::new`]
/// for a fresh default topology.
pub struct ClusterBuilder {
    topo: Topology,
    seed: u64,
    net: NetConfig,
    clients: Vec<(ClientConfig, Box<dyn Workload>)>,
    trace: Option<Trace>,
    storage: Option<StorageFactory>,
}

impl ClusterBuilder {
    /// Starts a builder for `sites` sites placed by `directory`.
    pub fn new(sites: u32, directory: Directory) -> Self {
        ClusterBuilder::from_topology(Topology::new(sites, directory))
    }

    /// Starts a builder over an existing cluster description. The
    /// topology's items, engine configuration, data directory, fsync
    /// policy, and trace flag all carry over; only simulation-specific
    /// pieces (seed, network model, clients) remain to be set.
    pub fn from_topology(topo: Topology) -> Self {
        ClusterBuilder {
            topo,
            seed: 0,
            net: NetConfig::default(),
            clients: Vec::new(),
            trace: None,
            storage: None,
        }
    }

    /// Sets the random seed (runs are reproducible per seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the network model.
    pub fn net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Sets the engine configuration (protocol, timeouts). Accepts a full
    /// [`EngineConfig`] or a bare [`crate::CommitProtocol`].
    pub fn engine(mut self, engine: impl Into<EngineConfig>) -> Self {
        self.topo = self.topo.engine(engine);
        self
    }

    /// Turns on the static submit gate.
    #[deprecated(
        since = "0.1.0",
        note = "set it on the shared configuration: `Topology::static_checks` \
                (then `ClusterBuilder::from_topology`)"
    )]
    pub fn static_checks(mut self) -> Self {
        self.topo.engine.static_checks = true;
        self
    }

    /// Seeds an initial item value (placed by the directory). Accepts raw
    /// `u64` item ids and anything convertible to a [`Value`].
    pub fn item(mut self, item: impl Into<ItemId>, value: impl Into<Value>) -> Self {
        self.topo = self.topo.item(item, value);
        self
    }

    /// Seeds items `0..n` with the same integer value.
    pub fn uniform_items(mut self, n: u64, value: i64) -> Self {
        self.topo = self.topo.uniform_items(n, value);
        self
    }

    /// Adds a client driven by `workload`.
    pub fn client(mut self, config: ClientConfig, workload: Box<dyn Workload>) -> Self {
        self.clients.push((config, workload));
        self
    }

    /// Adds `n` clients sharing one configuration; `workload_fn` builds the
    /// workload for each client index.
    pub fn clients(
        mut self,
        n: usize,
        config: ClientConfig,
        workload_fn: impl Fn(usize) -> Box<dyn Workload>,
    ) -> Self {
        for i in 0..n {
            self.clients.push((config.clone(), workload_fn(i)));
        }
        self
    }

    /// Backs every site's store with storage built by `factory` — e.g. a
    /// [`pv_store::FaultyStorage`] for storage-fault injection runs, or a
    /// [`pv_store::DiskWal`] for durability experiments. The default is a
    /// plain in-memory WAL.
    pub fn storage(mut self, factory: impl Fn(SiteId) -> Box<dyn Storage> + 'static) -> Self {
        self.storage = Some(Box::new(factory));
        self
    }

    /// Buffers a full protocol trace of the run, readable afterwards via
    /// [`Cluster::trace`].
    pub fn collect_trace(mut self) -> Self {
        self.trace = Some(Trace::collecting());
        self
    }

    /// Buffers a protocol trace and streams each record to `sink` as it is
    /// emitted. Any `FnMut(&TraceRecord)` works as a sink.
    pub fn trace(mut self, sink: impl TraceSink + Send + 'static) -> Self {
        self.trace = Some(Trace::with_sink(sink));
        self
    }

    /// Builds the world: sites first (node ids `0..sites`), then clients.
    pub fn build(self) -> Cluster {
        let topo = self.topo;
        let mut world = World::new(self.seed, self.net);
        if let Some(trace) = self.trace {
            world.set_trace(trace);
        } else if topo.collect_trace {
            world.set_trace(Trace::collecting());
        }
        for s in 0..topo.sites {
            // Precedence: an explicit storage factory wins; otherwise a
            // topology data dir gets the same per-site DiskWal layout the
            // live and networked runtimes use; otherwise memory.
            let store = match (&self.storage, &topo.data_dir) {
                (Some(factory), _) => SiteStore::with_storage(factory(s as SiteId)),
                (None, Some(dir)) => {
                    let site_dir = dir.join(format!("site-{s}"));
                    let wal = DiskWal::open(&site_dir, topo.fsync_policy)
                        .expect("open site WAL directory");
                    let mut store = SiteStore::open(Box::new(wal));
                    // Mirror keyspace runs beside the WAL. The mirror is
                    // derived state (the WAL stays authoritative), so it is
                    // attached after recovery replays the log.
                    store.attach_keyspace_dir(&site_dir);
                    store
                }
                (None, None) => SiteStore::new(),
            };
            let mut site = Site::with_store(
                s as SiteId,
                topo.engine.clone(),
                topo.directory.clone(),
                store,
            );
            for (item, value) in &topo.items {
                if topo.directory.site_of(*item) == Some(s as SiteId)
                    && !site.store().contains(*item)
                {
                    site.seed_item(*item, value.clone());
                }
            }
            // The initial database population is durable before the run
            // starts; only records appended during the run are at the mercy
            // of the fsync policy.
            site.sync_store();
            let id = world.add_node(Node::Site(Box::new(site)));
            debug_assert_eq!(id, site_node(s as SiteId));
        }
        let mut client_nodes = Vec::with_capacity(self.clients.len());
        for (config, workload) in self.clients {
            let client = Client::new(config, topo.directory.clone(), topo.sites, workload);
            client_nodes.push(world.add_node(Node::Client(Box::new(client))));
        }
        Cluster {
            world,
            sites: topo.sites,
            client_nodes,
            directory: topo.directory,
        }
    }
}

/// A running simulated cluster.
pub struct Cluster {
    /// The underlying simulation world (exposed for failure injection and
    /// fine-grained control).
    pub world: World<Node>,
    sites: u32,
    client_nodes: Vec<NodeId>,
    directory: Directory,
}

impl Cluster {
    /// Number of sites.
    pub fn site_count(&self) -> u32 {
        self.sites
    }

    /// The node ids of the clients, in the order they were added.
    pub fn client_nodes(&self) -> &[NodeId] {
        &self.client_nodes
    }

    /// Immutable access to a site.
    pub fn site(&self, s: SiteId) -> Result<&Site, EngineError> {
        if s >= self.sites {
            return Err(EngineError::UnknownSite(s));
        }
        match self.world.actor(site_node(s)) {
            Node::Site(site) => Ok(site),
            Node::Client(_) => Err(EngineError::UnknownSite(s)),
        }
    }

    /// Immutable access to a client by index.
    pub fn client(&self, idx: usize) -> Result<&Client, EngineError> {
        let node = *self
            .client_nodes
            .get(idx)
            .ok_or(EngineError::UnknownClient(idx))?;
        match self.world.actor(node) {
            Node::Client(c) => Ok(c),
            Node::Site(_) => Err(EngineError::UnknownClient(idx)),
        }
    }

    /// Runs the simulation until virtual time `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.world.run_until(t);
    }

    /// The run's protocol trace (empty unless the builder enabled one via
    /// [`ClusterBuilder::collect_trace`] or [`ClusterBuilder::trace`]).
    pub fn trace(&self) -> &Trace {
        self.world.trace()
    }

    /// Total number of items holding polyvalues across all sites — the
    /// paper's `P(t)` for the engine-level system.
    pub fn total_poly_count(&self) -> usize {
        (0..self.sites)
            .map(|s| self.site(s as SiteId).expect("site ids in range").poly_count())
            .sum()
    }

    /// Samples the polyvalue census into the metrics gauge `poly.count`.
    pub fn sample_poly_gauge(&mut self) {
        let now = self.world.now();
        let count = self.total_poly_count() as f64;
        self.world.metrics_mut().gauge("poly.count", now, count);
    }

    /// The current entry of an item, wherever it lives.
    pub fn item_entry(&self, item: ItemId) -> Result<Entry<Value>, EngineError> {
        let site = self
            .directory
            .site_of(item)
            .ok_or(EngineError::UnplacedItem(item))?;
        self.site(site)?
            .store()
            .get(item)
            .ok_or(EngineError::MissingItem(item))
    }

    /// Serves a coordination-free read-only transaction at site `s`: the
    /// site pins an MVCC snapshot, reads `items` (all its items when the
    /// list is empty) at that sequence number, and returns
    /// `(snapshot, entries)`. No lock-table traffic and no protocol
    /// messages; the trace records a `snapshot_read` event and the
    /// `store.snapshot_reads` counter advances.
    pub fn snapshot_read(
        &mut self,
        s: SiteId,
        items: &[ItemId],
    ) -> Result<pv_store::SnapshotView, EngineError> {
        if s >= self.sites {
            return Err(EngineError::UnknownSite(s));
        }
        Ok(self.world.call(site_node(s), |node, ctx| match node {
            Node::Site(site) => site.snapshot_read(ctx, items),
            Node::Client(_) => unreachable!("site ids map to site nodes"),
        }))
    }

    /// Whether every site is fully quiescent: no in-flight protocol state,
    /// no staged transactions, no tracked outcomes.
    pub fn all_quiescent(&self) -> bool {
        (0..self.sites).all(|s| {
            self.site(s as SiteId)
                .expect("site ids in range")
                .is_quiescent()
        })
    }

    /// Sums an integer item range (consistency checks, e.g. conservation of
    /// money). Fails if any item is missing, polyvalued, or not an integer.
    pub fn sum_items(&self, items: impl Iterator<Item = ItemId>) -> Result<i64, EngineError> {
        let mut total = 0i64;
        for item in items {
            match self.item_entry(item)? {
                Entry::Simple(Value::Int(n)) => total += n,
                _ => return Err(EngineError::NotAnInt(item)),
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Script;
    use pv_simnet::SimDuration;

    #[test]
    fn builder_places_items_by_directory() {
        let cluster = ClusterBuilder::new(3, Directory::Mod(3))
            .uniform_items(9, 7)
            .build();
        for s in 0..3u32 {
            assert_eq!(cluster.site(s).unwrap().store().item_count(), 3);
        }
        assert_eq!(
            cluster.item_entry(ItemId(4)),
            Ok(Entry::Simple(Value::Int(7)))
        );
        assert_eq!(cluster.sum_items((0..9).map(ItemId)), Ok(63));
        assert!(cluster.all_quiescent());
        assert_eq!(cluster.total_poly_count(), 0);
        assert_eq!(cluster.site_count(), 3);
    }

    #[test]
    fn clients_are_added_after_sites() {
        let cluster = ClusterBuilder::new(2, Directory::Mod(2))
            .client(
                ClientConfig::default(),
                Box::new(Script::new(vec![], SimDuration::from_millis(1))),
            )
            .build();
        assert_eq!(cluster.client_nodes(), &[NodeId(2)]);
        assert_eq!(cluster.client(0).unwrap().outstanding_count(), 0);
    }

    #[test]
    fn accessors_reject_bad_ids_without_panicking() {
        let cluster = ClusterBuilder::new(1, Directory::Mod(1))
            .client(
                ClientConfig::default(),
                Box::new(Script::new(vec![], SimDuration::from_millis(1))),
            )
            .build();
        assert_eq!(cluster.site(1).err(), Some(EngineError::UnknownSite(1)));
        assert_eq!(
            cluster.client(5).err(),
            Some(EngineError::UnknownClient(5))
        );
        assert_eq!(
            cluster.item_entry(ItemId(0)).err(),
            Some(EngineError::MissingItem(ItemId(0)))
        );
        assert_eq!(
            cluster.sum_items([ItemId(9)].into_iter()).err(),
            Some(EngineError::MissingItem(ItemId(9)))
        );
    }

    #[test]
    fn clients_helper_adds_n_clients() {
        let cluster = ClusterBuilder::new(2, Directory::Mod(2))
            .clients(3, ClientConfig::default(), |_| {
                Box::new(Script::new(vec![], SimDuration::from_millis(1)))
            })
            .build();
        assert_eq!(cluster.client_nodes().len(), 3);
        assert_eq!(cluster.client_nodes()[0], NodeId(2));
    }

    #[test]
    fn builder_accepts_protocol_and_raw_item_ids() {
        let cluster = ClusterBuilder::new(1, Directory::Mod(1))
            .engine(crate::config::CommitProtocol::Blocking2pc)
            .item(3u64, 42i64)
            .build();
        assert_eq!(
            cluster.item_entry(ItemId(3)),
            Ok(Entry::Simple(Value::Int(42)))
        );
    }

    #[test]
    fn trace_is_disabled_by_default_and_collectable() {
        let quiet = ClusterBuilder::new(1, Directory::Mod(1)).build();
        assert!(!quiet.trace().is_enabled());
        let traced = ClusterBuilder::new(1, Directory::Mod(1))
            .collect_trace()
            .build();
        assert!(traced.trace().is_enabled());
    }
}
