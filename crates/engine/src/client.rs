//! The client actor: submits a workload, retries aborts, records outcomes.

use crate::config::UncertainOutputPolicy;
use crate::directory::Directory;
use crate::messages::{AbortReason, Msg, TxnResult};
use crate::site::site_node;
use crate::workload::Workload;
use pv_core::TransactionSpec;
use pv_simnet::{Actor, Ctx, NodeId, SimDuration, TraceEvent};
use pv_store::SiteId;
use std::collections::BTreeMap;

/// Client behaviour knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// How many times an aborted transaction is retried before giving up.
    pub max_retries: u32,
    /// Base backoff before a retry; doubles per attempt, with jitter.
    pub backoff: SimDuration,
    /// Keep every `(spec, result)` pair for later inspection (tests); turn
    /// off for long benchmark runs.
    pub record_results: bool,
    /// §3.4 policy toward uncertain outputs (measured via metrics).
    pub uncertain_outputs: UncertainOutputPolicy,
    /// How long to wait for a reply before giving the request up (covers a
    /// crashed or unreachable coordinator). Re-submission would risk running
    /// the transaction twice, so the client abandons instead.
    pub response_timeout: SimDuration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            max_retries: 8,
            backoff: SimDuration::from_millis(40),
            record_results: true,
            uncertain_outputs: UncertainOutputPolicy::Present,
            response_timeout: SimDuration::from_secs(2),
        }
    }
}

/// One outstanding request.
#[derive(Debug)]
struct Outstanding {
    spec: TransactionSpec,
    coordinator: SiteId,
    first_submit: Option<pv_simnet::SimTime>,
    retries: u32,
    /// True while a submit is in flight; false while backing off.
    awaiting: bool,
    /// Timer generation: a timer whose generation does not match is stale.
    gen: u8,
}

/// Timer key for the next workload arrival.
const ARRIVAL_KEY: u64 = 0;

/// A client of the distributed database.
///
/// The client pulls transactions from its [`Workload`], submits each to a
/// coordinator site (the home site of the transaction's first written item,
/// or its first read item for queries), and retries aborted transactions
/// with exponential backoff.
pub struct Client {
    config: ClientConfig,
    directory: Directory,
    sites: u32,
    workload: Box<dyn Workload>,
    staged: Option<TransactionSpec>,
    outstanding: BTreeMap<u64, Outstanding>,
    next_req: u64,
    results: Vec<(TransactionSpec, TxnResult)>,
}

impl Client {
    /// Creates a client over `sites` sites (site `s` = node `s`).
    pub fn new(
        config: ClientConfig,
        directory: Directory,
        sites: u32,
        workload: Box<dyn Workload>,
    ) -> Self {
        assert!(sites > 0, "a cluster needs at least one site");
        Client {
            config,
            directory,
            sites,
            workload,
            staged: None,
            outstanding: BTreeMap::new(),
            next_req: 1,
            results: Vec::new(),
        }
    }

    /// Completed `(spec, result)` pairs, in completion order (only when
    /// `record_results` is on).
    pub fn results(&self) -> &[(TransactionSpec, TxnResult)] {
        &self.results
    }

    /// Requests still awaiting a reply (or scheduled for retry).
    pub fn outstanding_count(&self) -> usize {
        self.outstanding.len()
    }

    /// Picks a coordinator for a spec: home of the first write, else of the
    /// first read, else site 0.
    fn coordinator_for(&self, spec: &TransactionSpec) -> SiteId {
        let first_item = spec
            .write_set()
            .into_iter()
            .next()
            .or_else(|| spec.read_set().into_iter().next());
        first_item
            .and_then(|item| self.directory.site_of(item))
            .map(|s| s % self.sites)
            .unwrap_or(0)
    }

    fn pull_next_arrival(&mut self, ctx: &mut Ctx<Msg>) {
        if let Some((spec, gap)) = self.workload.next(ctx.rng()) {
            self.staged = Some(spec);
            ctx.set_timer(gap, ARRIVAL_KEY);
        }
    }

    fn submit(&mut self, ctx: &mut Ctx<Msg>, req_id: u64) {
        let response_timeout = self.config.response_timeout;
        let Some(out) = self.outstanding.get_mut(&req_id) else {
            return;
        };
        if out.first_submit.is_none() {
            out.first_submit = Some(ctx.now());
            ctx.trace(TraceEvent::TxnSubmitted {
                req_id,
                coordinator: out.coordinator,
            });
        }
        out.awaiting = true;
        out.gen = out.gen.wrapping_add(1);
        let key = (req_id << 8) | u64::from(out.gen);
        let coordinator = out.coordinator;
        let spec = out.spec.clone();
        ctx.metrics().inc("client.submits");
        ctx.send(site_node(coordinator), Msg::Submit { req_id, spec });
        ctx.set_timer(response_timeout, key);
    }
}

impl Actor for Client {
    type Msg = Msg;

    fn on_start(&mut self, ctx: &mut Ctx<Msg>) {
        self.pull_next_arrival(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<Msg>, _from: NodeId, msg: Msg) {
        let Msg::Reply { req_id, result } = msg else {
            return; // clients only consume replies
        };
        let Some(out) = self.outstanding.get(&req_id) else {
            return; // duplicate or post-giveup reply
        };
        let retryable = matches!(
            result,
            TxnResult::Aborted {
                reason: AbortReason::LockConflict | AbortReason::Timeout
            }
        );
        if retryable && out.retries < self.config.max_retries {
            let out = self.outstanding.get_mut(&req_id).expect("present");
            out.retries += 1;
            out.awaiting = false;
            out.gen = out.gen.wrapping_add(1);
            let key = (req_id << 8) | u64::from(out.gen);
            let factor = 1 << out.retries.min(10);
            let jitter = ctx.rng().uniform(0.5, 1.5);
            let delay = self.config.backoff.mul_f64(factor as f64 * jitter);
            ctx.metrics().inc("client.retries");
            ctx.trace(TraceEvent::TxnRetried {
                req_id,
                attempt: out.retries,
            });
            ctx.set_timer(delay, key);
            return;
        }
        let out = self.outstanding.remove(&req_id).expect("present");
        match &result {
            TxnResult::Committed { .. } => {
                ctx.metrics().inc("client.committed");
                if let Some(t0) = out.first_submit {
                    let latency = ctx.now().since(t0).as_secs_f64();
                    ctx.metrics().observe("client.latency", latency);
                }
                if result.has_uncertain_output() {
                    ctx.metrics().inc("client.uncertain_output");
                    if self.config.uncertain_outputs == UncertainOutputPolicy::Withhold {
                        ctx.metrics().inc("client.withheld");
                    }
                }
                if result.fully_granted() {
                    ctx.metrics().inc("client.granted");
                }
            }
            TxnResult::Aborted { .. } if retryable => {
                ctx.metrics().inc("client.gave_up");
            }
            TxnResult::Aborted { .. } => {
                ctx.metrics().inc("client.failed");
            }
        }
        if self.config.record_results {
            self.results.push((out.spec, result));
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<Msg>, key: u64) {
        if key == ARRIVAL_KEY {
            if let Some(spec) = self.staged.take() {
                let req_id = self.next_req;
                self.next_req += 1;
                let coordinator = self.coordinator_for(&spec);
                self.outstanding.insert(
                    req_id,
                    Outstanding {
                        spec,
                        coordinator,
                        first_submit: None,
                        retries: 0,
                        awaiting: false,
                        gen: 0,
                    },
                );
                self.submit(ctx, req_id);
            }
            self.pull_next_arrival(ctx);
        } else {
            let req_id = key >> 8;
            let gen = (key & 0xFF) as u8;
            let Some(out) = self.outstanding.get(&req_id) else {
                return;
            };
            if out.gen != gen {
                return; // stale timer from a superseded state
            }
            if out.awaiting {
                // No reply within patience: the coordinator is unreachable.
                // Re-submitting could run the transaction twice, so abandon.
                self.outstanding.remove(&req_id);
                ctx.metrics().inc("client.no_reply");
            } else {
                // Backoff elapsed: retry.
                self.submit(ctx, req_id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Script;
    use pv_core::{Expr, ItemId};

    fn client_with(spec: TransactionSpec) -> Client {
        Client::new(
            ClientConfig::default(),
            Directory::Mod(3),
            3,
            Box::new(Script::new(vec![spec], SimDuration::from_millis(1))),
        )
    }

    #[test]
    fn coordinator_prefers_first_write_site() {
        let spec = TransactionSpec::new()
            .update(ItemId(4), Expr::read(ItemId(2)))
            .output("r", Expr::read(ItemId(2)));
        let c = client_with(spec.clone());
        // Item 4 lives at site 4 % 3 == 1.
        assert_eq!(c.coordinator_for(&spec), 1);
    }

    #[test]
    fn coordinator_falls_back_to_read_site_then_zero() {
        let read_only = TransactionSpec::new().output("r", Expr::read(ItemId(2)));
        let c = client_with(read_only.clone());
        assert_eq!(c.coordinator_for(&read_only), 2);
        let empty = TransactionSpec::new().output("r", Expr::int(1));
        assert_eq!(c.coordinator_for(&empty), 0);
    }

    #[test]
    fn starts_with_no_results() {
        let c = client_with(TransactionSpec::new());
        assert!(c.results().is_empty());
        assert_eq!(c.outstanding_count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn zero_sites_rejected() {
        let _ = Client::new(
            ClientConfig::default(),
            Directory::Mod(1),
            0,
            Box::new(Script::new(vec![], SimDuration::from_millis(1))),
        );
    }
}
