//! The unified runtime description shared by every deployment of the engine.
//!
//! Three runtimes drive the identical `pv_protocol::SiteMachine`: the
//! deterministic simulation ([`Cluster`](crate::Cluster)), the
//! thread-per-site live runtime ([`LiveCluster`](crate::LiveCluster)), and
//! the multi-process socket runtime (`pv-net`). Before this module each grew
//! its own builder with its own copy of the same knobs; a workload spec
//! written against one could not move to another without re-plumbing its
//! configuration. A [`Topology`] is that configuration, once: how many
//! sites, where items live, which protocol variant and timeouts, the initial
//! database population, durability (data directory and fsync policy), the
//! static-checks submit gate, and whether a protocol trace is collected.
//!
//! Every runtime consumes the same value:
//!
//! ```
//! use pv_engine::topology::Topology;
//! use pv_engine::{ClusterBuilder, Directory, LiveCluster};
//!
//! let topo = Topology::new(2, Directory::Mod(2))
//!     .item(0u64, 100i64)
//!     .item(1u64, 100i64);
//!
//! // Simulation: add clients/seed, then build.
//! let sim = ClusterBuilder::from_topology(topo.clone()).seed(7).build();
//! assert_eq!(sim.site_count(), 2);
//!
//! // Live threads: same topology, zero re-plumbing.
//! let live = LiveCluster::from_topology(topo).unwrap();
//! assert_eq!(live.site_count(), 2);
//! live.shutdown();
//! // (`pv_net::NetBuilder::from_topology` accepts the same value.)
//! ```

use crate::config::EngineConfig;
use crate::directory::Directory;
use pv_core::{ItemId, Value};
use pv_store::FsyncPolicy;
use std::path::PathBuf;

/// Runtime-agnostic description of a reconnect/backoff policy, consumed by
/// the networked runtime (`pv_net::Backoff::from_config`) and carried on the
/// wire by the `ConfigBackoff` control frame for live reconfiguration.
///
/// Plain milliseconds/floats rather than `Duration` so the value can live in
/// a [`Topology`], travel in a frame, and be compared exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffConfig {
    /// Delay before the first retry, in milliseconds.
    pub base_ms: u64,
    /// Upper bound any single delay grows to, in milliseconds.
    pub max_ms: u64,
    /// Multiplicative growth per attempt (≥ 1.0).
    pub factor: f64,
    /// Fraction of each delay randomised (0.0 = none, 0.5 = ±50 %).
    pub jitter: f64,
    /// Consecutive failures tolerated before a peer is declared unreachable.
    pub attempts: u32,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            base_ms: 50,
            max_ms: 1000,
            factor: 2.0,
            jitter: 0.25,
            attempts: 50,
        }
    }
}

/// A complete, runtime-agnostic description of one polyvalue cluster.
///
/// Construct with [`Topology::new`], refine with the chainable setters, then
/// hand the value to [`ClusterBuilder::from_topology`](crate::ClusterBuilder::from_topology),
/// [`LiveCluster::from_topology`](crate::LiveCluster::from_topology), or
/// `pv_net::NetBuilder::from_topology`. The fields are public so embedding
/// code (and the `pv-net` crate) can read the description back without a
/// parallel accessor surface.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Number of database sites (site ids `0..sites`).
    pub sites: u32,
    /// Item placement: which site is home to which item.
    pub directory: Directory,
    /// Protocol variant, timeouts, lock policy, split mode, the
    /// static-checks gate, and the WAL compaction threshold.
    pub engine: EngineConfig,
    /// Initial database population; each item is seeded at its home site.
    pub items: Vec<(ItemId, Value)>,
    /// When set, each site persists its WAL under `<dir>/site-<s>` and
    /// recovers from a non-empty image on startup. `None` keeps WALs in
    /// memory (the simulation additionally supports arbitrary backends via
    /// [`ClusterBuilder::storage`](crate::ClusterBuilder::storage)).
    pub data_dir: Option<PathBuf>,
    /// Fsync policy of disk-backed sites (ignored without a data dir).
    pub fsync_policy: FsyncPolicy,
    /// Whether the runtime buffers a full protocol trace. Streaming sinks
    /// remain per-builder: a sink is a live callback, not cluster shape.
    pub collect_trace: bool,
    /// Reconnect/backoff policy of the networked runtime (`None` = that
    /// runtime's default). The simulated and live runtimes have no sockets
    /// to redial and ignore it.
    pub backoff: Option<BackoffConfig>,
}

/// The historical name for the runtime-agnostic cluster description; the
/// builders' docs call it a topology because the site/item layout is the
/// part every runtime shares verbatim.
pub type RuntimeConfig = Topology;

impl Topology {
    /// A topology of `sites` sites placed by `directory`, with default
    /// engine configuration, no items, in-memory durability, and no trace.
    ///
    /// # Panics
    ///
    /// Panics if `sites` is zero.
    pub fn new(sites: u32, directory: Directory) -> Self {
        assert!(sites > 0, "a cluster needs at least one site");
        Topology {
            sites,
            directory,
            engine: EngineConfig::default(),
            items: Vec::new(),
            data_dir: None,
            fsync_policy: FsyncPolicy::PerDecision,
            collect_trace: false,
            backoff: None,
        }
    }

    /// Sets the engine configuration (protocol, timeouts). Accepts a full
    /// [`EngineConfig`] or a bare [`crate::CommitProtocol`].
    pub fn engine(mut self, config: impl Into<EngineConfig>) -> Self {
        self.engine = config.into();
        self
    }

    /// Seeds an initial item value (placed by the directory). Accepts raw
    /// `u64` item ids and anything convertible to a [`Value`].
    pub fn item(mut self, item: impl Into<ItemId>, value: impl Into<Value>) -> Self {
        self.items.push((item.into(), value.into()));
        self
    }

    /// Seeds many items at once.
    pub fn items(mut self, items: impl IntoIterator<Item = (ItemId, Value)>) -> Self {
        self.items.extend(items);
        self
    }

    /// Seeds items `0..n` with the same integer value.
    pub fn uniform_items(mut self, n: u64, value: i64) -> Self {
        for i in 0..n {
            self.items.push((ItemId(i), Value::Int(value)));
        }
        self
    }

    /// Turns on the static submit gate: every submitted transaction runs the
    /// `pv-analysis` checks first, and `Error`-severity findings abort it
    /// (non-retryably) before any protocol work.
    pub fn static_checks(mut self) -> Self {
        self.engine.static_checks = true;
        self
    }

    /// Persists each site's WAL under `<dir>/site-<s>`; a site whose
    /// directory already holds a WAL image recovers from it.
    pub fn data_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.data_dir = Some(dir.into());
        self
    }

    /// Sets the fsync policy of disk-backed sites (default: per-decision,
    /// the cheapest policy that keeps the §3.1 protocol crash-safe).
    pub fn fsync_policy(mut self, policy: FsyncPolicy) -> Self {
        self.fsync_policy = policy;
        self
    }

    /// Sets the networked runtime's reconnect/backoff policy (ignored by
    /// the socketless runtimes).
    pub fn backoff(mut self, backoff: BackoffConfig) -> Self {
        self.backoff = Some(backoff);
        self
    }

    /// Sets the WAL length (in records) above which a site compacts its log
    /// into a snapshot after applying a decision.
    pub fn compact_threshold(mut self, records: usize) -> Self {
        self.engine.compact_threshold = records;
        self
    }

    /// Sets the number of versions a keyspace partition's memtable holds
    /// before it flushes into a sorted run.
    pub fn memtable_threshold(mut self, versions: usize) -> Self {
        self.engine.memtable_threshold = versions;
        self
    }

    /// Sets the number of sorted runs a keyspace partition accumulates
    /// before a size-tiered compaction merges them.
    pub fn run_threshold(mut self, runs: usize) -> Self {
        self.engine.run_threshold = runs;
        self
    }

    /// Buffers a full protocol trace in whichever runtime consumes this
    /// topology. Simulation traces are byte-identical per seed; live and
    /// net traces carry wall-clock timestamps.
    pub fn collect_trace(mut self) -> Self {
        self.collect_trace = true;
        self
    }

    /// The sum of all integer items seeded by this topology — the expected
    /// conserved total for funds-transfer-style workloads, used by the
    /// cross-runtime equivalence tests and the loadgen conservation gate.
    pub fn seeded_int_total(&self) -> i64 {
        self.items
            .iter()
            .filter_map(|(_, v)| v.as_int())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_style_setters_accumulate() {
        let topo = Topology::new(3, Directory::Mod(3))
            .engine(crate::CommitProtocol::Blocking2pc)
            .uniform_items(6, 10)
            .item(100u64, 5i64)
            .static_checks()
            .fsync_policy(FsyncPolicy::PerAppend)
            .collect_trace();
        assert_eq!(topo.sites, 3);
        assert_eq!(topo.items.len(), 7);
        assert!(topo.engine.static_checks);
        assert_eq!(topo.fsync_policy, FsyncPolicy::PerAppend);
        assert!(topo.collect_trace);
        assert_eq!(topo.seeded_int_total(), 65);
    }

    #[test]
    fn storage_threshold_setters_reach_the_engine_config() {
        let topo = Topology::new(1, Directory::Mod(1))
            .compact_threshold(64)
            .memtable_threshold(8)
            .run_threshold(3);
        assert_eq!(topo.engine.compact_threshold, 64);
        assert_eq!(topo.engine.memtable_threshold, 8);
        assert_eq!(topo.engine.run_threshold, 3);
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn zero_sites_is_rejected() {
        let _ = Topology::new(0, Directory::Mod(1));
    }

    #[test]
    fn backoff_setter_records_the_policy() {
        let topo = Topology::new(2, Directory::Mod(2)).backoff(BackoffConfig {
            attempts: 7,
            ..BackoffConfig::default()
        });
        assert_eq!(topo.backoff.unwrap().attempts, 7);
        assert!(Topology::new(1, Directory::Mod(1)).backoff.is_none());
    }

    #[test]
    fn runtime_config_is_an_alias() {
        let topo: RuntimeConfig = Topology::new(1, Directory::Mod(1));
        assert_eq!(topo.sites, 1);
    }
}
