//! The site actor: coordinator and participant roles of the §3.1 protocol.
//!
//! Each site plays both roles: it coordinates transactions submitted to it by
//! clients (read phase → evaluate → prepare phase → decision) and
//! participates in transactions coordinated elsewhere (locking, staging,
//! and — on a wait-phase timeout — acting per the configured
//! [`CommitProtocol`]: installing in-doubt polyvalues, blocking, or deciding
//! unilaterally). Outcome propagation after recovery follows §3.3.
//!
//! Cluster convention: site `s` is simulation node `NodeId(s)`; clients use
//! higher node ids.

use crate::config::{CommitProtocol, EngineConfig, LockPolicy, UncertainOutputPolicy};
use crate::directory::Directory;
use crate::ids::{coordinator_of, encode_txn};
use crate::locks::LockTable;
use crate::messages::{AbortReason, AccessMode, Msg, TxnResult};
use pv_core::expr::evaluate;
use pv_core::{Entry, ItemId, TransactionSpec, TxnId, Value};
use pv_simnet::{Actor, Ctx, Metrics, NodeId, SimTime, TraceEvent};
use pv_store::{SiteId, SiteStore};
use std::collections::{BTreeMap, BTreeSet};

/// Maps a site id to its simulation node (sites are added to the world
/// first, in order).
pub fn site_node(site: SiteId) -> NodeId {
    NodeId(site)
}

/// The coordinator's phase for one transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoordPhase {
    Reading,
    Preparing,
}

/// Coordinator-side state for one in-flight transaction (volatile: a
/// coordinator crash aborts the transaction by presumption).
#[derive(Debug)]
struct Coord {
    client: NodeId,
    req_id: u64,
    spec: TransactionSpec,
    phase: CoordPhase,
    /// The sites asked for reads (only the site set is needed after the
    /// requests go out; keeping the per-site item lists would mean cloning
    /// them once per transaction for no reader).
    read_sites: BTreeSet<SiteId>,
    entries: BTreeMap<ItemId, Entry<Value>>,
    responded: BTreeSet<SiteId>,
    write_sites: BTreeSet<SiteId>,
    readies: BTreeSet<SiteId>,
    pending_result: Option<TxnResult>,
    /// When the client's submit reached this coordinator (phase metrics).
    submitted_at: SimTime,
    /// When the prepare phase began, if it did.
    prepared_at: Option<SimTime>,
}

/// Participant-side volatile state for one transaction.
#[derive(Debug)]
struct Part {
    staged: bool,
    /// The transaction's coordinator (to notify on wound-wait eviction).
    coordinator: SiteId,
    /// Wound-wait age: the coordinator's clock at submission (0 = oldest,
    /// used for post-recovery staged transactions, which are never wounded
    /// anyway).
    ts: u64,
}

/// A read request parked by the wound-wait policy until its conflicting
/// holders finish.
#[derive(Debug)]
struct QueuedRead {
    ts: u64,
    txn: TxnId,
    from: SiteId,
    items: Vec<(ItemId, AccessMode)>,
}

/// How a read request was handled by the lock layer.
enum ServeOutcome {
    Served,
    Refused,
    Queued,
}

/// What a pending timer is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Purpose {
    CoordRead(TxnId),
    CoordReady(TxnId),
    PartWait(TxnId),
    ReadLease(TxnId),
    QueueExpire(TxnId),
    Inquire,
}

/// One site of the distributed database.
pub struct Site {
    id: SiteId,
    config: EngineConfig,
    directory: Directory,
    store: SiteStore,
    // Volatile state (cleared on crash):
    locks: LockTable,
    coords: BTreeMap<TxnId, Coord>,
    parts: BTreeMap<TxnId, Part>,
    revoked: BTreeSet<TxnId>,
    relaxed_actions: BTreeMap<TxnId, bool>,
    txn_counter: u64,
    timer_purposes: BTreeMap<u64, Purpose>,
    next_token: u64,
    inquire_armed: bool,
    /// §3.4 Withhold policy: committed results whose outputs still depend on
    /// in-doubt transactions, waiting for outcomes before replying.
    withheld: Vec<(NodeId, u64, TxnResult)>,
    /// Wound-wait: read requests parked behind current lock holders.
    read_queue: Vec<QueuedRead>,
    /// When this site installed polyvalues for an in-doubt transaction
    /// (volatile; feeds the install→collapse lifetime histogram).
    poly_installed_at: BTreeMap<TxnId, SimTime>,
    /// Whether wall-clock storage observations (recovery durations) flow
    /// into the metrics. Off in the simulation, which must keep its metric
    /// exports byte-deterministic under a seed; the live runtime opts in.
    wall_clock_metrics: bool,
}

impl Site {
    /// Creates a site with an empty store.
    pub fn new(id: SiteId, config: EngineConfig, directory: Directory) -> Self {
        let store = SiteStore::new();
        Site::with_store(id, config, directory, store)
    }

    /// Creates a site over an existing store — typically one opened from a
    /// durable [`pv_store::Storage`] backend, possibly holding a recovered
    /// image from a previous incarnation of this site.
    pub fn with_store(
        id: SiteId,
        config: EngineConfig,
        directory: Directory,
        store: SiteStore,
    ) -> Self {
        let store = store.with_compact_threshold(config.compact_threshold);
        Site {
            id,
            config,
            directory,
            store,
            locks: LockTable::new(),
            coords: BTreeMap::new(),
            parts: BTreeMap::new(),
            revoked: BTreeSet::new(),
            relaxed_actions: BTreeMap::new(),
            txn_counter: 0,
            timer_purposes: BTreeMap::new(),
            next_token: 0,
            inquire_armed: false,
            withheld: Vec::new(),
            read_queue: Vec::new(),
            poly_installed_at: BTreeMap::new(),
            wall_clock_metrics: false,
        }
    }

    /// Loads an item this site is home to (initial database population).
    pub fn seed_item(&mut self, item: ItemId, value: Value) {
        debug_assert_eq!(self.directory.site_of(item), Some(self.id));
        self.store.seed_item(item, value);
    }

    /// This site's id.
    pub fn id(&self) -> SiteId {
        self.id
    }

    /// Read access to the site's store (assertions, polyvalue census).
    pub fn store(&self) -> &SiteStore {
        &self.store
    }

    /// Forces the store's storage backend to persist everything buffered —
    /// the clean-shutdown path of a live deployment.
    pub fn sync_store(&mut self) {
        self.store.sync();
    }

    /// Opts into wall-clock storage metrics (the `recovery.duration`
    /// histogram). Only a real-time runtime should enable this: the
    /// simulation leaves it off so same-seed metric exports stay
    /// byte-identical.
    pub fn enable_wall_clock_metrics(&mut self) {
        self.wall_clock_metrics = true;
    }

    /// Number of items currently holding polyvalues at this site.
    pub fn poly_count(&self) -> usize {
        self.store.poly_count()
    }

    /// Whether the site has any protocol state in flight (volatile or
    /// staged) — used by tests to check quiescence.
    pub fn is_quiescent(&self) -> bool {
        self.coords.is_empty()
            && self.parts.is_empty()
            && self.store.pending_txns().is_empty()
            && !self.store.has_tracked_txns()
    }

    fn new_txn(&mut self) -> TxnId {
        self.txn_counter += 1;
        encode_txn(self.id, self.store.epoch(), self.txn_counter)
    }

    fn arm(&mut self, ctx: &mut Ctx<Msg>, delay: pv_simnet::SimDuration, purpose: Purpose) {
        let token = self.next_token;
        self.next_token += 1;
        self.timer_purposes.insert(token, purpose);
        ctx.set_timer(delay, token);
    }

    fn ensure_inquire(&mut self, ctx: &mut Ctx<Msg>) {
        if !self.inquire_armed {
            self.inquire_armed = true;
            self.arm(ctx, self.config.inquire_interval, Purpose::Inquire);
        }
    }

    // ---- coordinator role ---------------------------------------------------

    fn on_submit(
        &mut self,
        ctx: &mut Ctx<Msg>,
        client: NodeId,
        req_id: u64,
        spec: TransactionSpec,
    ) {
        ctx.metrics().inc("txn.submitted");
        // The opt-in submit gate: reject statically wrong transactions
        // before burning protocol work on them. Rejections are final (the
        // spec itself is wrong), so clients do not retry them.
        if self.config.static_checks {
            if let Err(report) = pv_analysis::gate_spec(&spec) {
                ctx.metrics().inc("txn.rejected.static");
                let result = TxnResult::Aborted {
                    reason: AbortReason::Rejected(report),
                };
                ctx.send(client, Msg::Reply { req_id, result });
                return;
            }
        }
        let txn = self.new_txn();
        let writes = spec.write_set();
        let mut modes: BTreeMap<ItemId, AccessMode> = BTreeMap::new();
        for item in spec.read_set() {
            modes.insert(item, AccessMode::Read);
        }
        for item in &writes {
            modes.insert(*item, AccessMode::Write);
        }
        // A transaction touching nothing evaluates immediately.
        if modes.is_empty() {
            let empty: BTreeMap<ItemId, Entry<Value>> = BTreeMap::new();
            let result = match evaluate(&spec, &empty, self.config.split_mode) {
                Ok(out) => {
                    let outputs = out.collate_outputs().expect("no items, no polyvalues");
                    let granted = out.collate_granted().expect("no items, no polyvalues");
                    ctx.metrics().inc("txn.committed");
                    TxnResult::Committed {
                        granted,
                        outputs,
                        was_poly: false,
                    }
                }
                Err(e) => {
                    ctx.metrics().inc("txn.aborted.eval");
                    TxnResult::Aborted {
                        reason: AbortReason::Eval(e.to_string()),
                    }
                }
            };
            ctx.send(client, Msg::Reply { req_id, result });
            return;
        }
        // Validate placement before contacting anyone.
        if modes
            .keys()
            .any(|item| self.directory.site_of(*item).is_none())
        {
            ctx.metrics().inc("txn.aborted.eval");
            let result = TxnResult::Aborted {
                reason: AbortReason::Eval("transaction touches an unplaced item".into()),
            };
            ctx.send(client, Msg::Reply { req_id, result });
            return;
        }
        let groups = self
            .directory
            .group_by_site(modes.iter().map(|(&i, &m)| (i, m)));
        let coord = Coord {
            client,
            req_id,
            spec,
            phase: CoordPhase::Reading,
            read_sites: groups.keys().copied().collect(),
            entries: BTreeMap::new(),
            responded: BTreeSet::new(),
            write_sites: BTreeSet::new(),
            readies: BTreeSet::new(),
            pending_result: None,
            submitted_at: ctx.now(),
            prepared_at: None,
        };
        self.coords.insert(txn, coord);
        let ts = ctx.now().as_micros();
        for (site, items) in groups {
            ctx.send(site_node(site), Msg::ReadReq { txn, ts, items });
        }
        self.arm(ctx, self.config.read_timeout, Purpose::CoordRead(txn));
    }

    fn on_read_resp(
        &mut self,
        ctx: &mut Ctx<Msg>,
        from: SiteId,
        txn: TxnId,
        entries: Vec<(ItemId, Entry<Value>)>,
    ) {
        let Some(coord) = self.coords.get_mut(&txn) else {
            return;
        };
        if coord.phase != CoordPhase::Reading {
            return;
        }
        coord.entries.extend(entries);
        coord.responded.insert(from);
        if coord.responded.len() == coord.read_sites.len() {
            self.evaluate_and_prepare(ctx, txn);
        }
    }

    /// All reads are in: run the (poly)evaluator, then either finish a
    /// write-free transaction or ship computed writes to the write sites.
    fn evaluate_and_prepare(&mut self, ctx: &mut Ctx<Msg>, txn: TxnId) {
        let Some(coord) = self.coords.get_mut(&txn) else {
            return;
        };
        let out = match evaluate(&coord.spec, &coord.entries, self.config.split_mode) {
            Ok(out) => out,
            Err(e) => {
                let reason = AbortReason::Eval(e.to_string());
                self.finish_abort(ctx, txn, reason);
                return;
            }
        };
        if out.is_poly() {
            ctx.metrics().inc("txn.polytransactions");
            ctx.metrics()
                .observe("txn.alternatives", out.alts.len() as f64);
            ctx.trace(TraceEvent::AltSplit {
                txn: txn.raw(),
                alternatives: out.alts.len() as u32,
            });
        }
        let collated = match (
            out.collate_writes(&coord.entries),
            out.collate_outputs(),
            out.collate_granted(),
        ) {
            (Ok(w), Ok(o), Ok(g)) => (w, o, g),
            (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => {
                let reason = AbortReason::Eval(e.to_string());
                self.finish_abort(ctx, txn, reason);
                return;
            }
        };
        let (writes, outputs, granted) = collated;
        let result = TxnResult::Committed {
            granted,
            outputs,
            was_poly: out.is_poly(),
        };
        if writes.is_empty() {
            // Read-only, or denied in every alternative: complete trivially
            // so participants release their read locks.
            self.store.record_decision(txn, true);
            let coord = self.coords.remove(&txn).expect("checked above");
            self.note_decided(ctx, txn, &coord, true);
            for &site in &coord.read_sites {
                ctx.send(
                    site_node(site),
                    Msg::Decision {
                        txn,
                        completed: true,
                    },
                );
            }
            self.note_commit_metrics(ctx, &result);
            self.deliver_result(ctx, coord.client, coord.req_id, result);
            return;
        }
        // Group the *owned* entries: each write is shipped to exactly one
        // site, so moving them into the per-site groups skips an entry clone
        // per prepared item.
        let groups = self.directory.group_by_site(writes);
        coord.phase = CoordPhase::Preparing;
        coord.write_sites = groups.keys().copied().collect();
        coord.pending_result = Some(result);
        coord.prepared_at = Some(ctx.now());
        let read_phase = ctx.now().since(coord.submitted_at).as_secs_f64();
        ctx.metrics().observe("phase.submit_prepared", read_phase);
        // §3.3: record which sites we are sending uncertainty to, so learned
        // outcomes are forwarded to them.
        let mut sent: Vec<(TxnId, SiteId)> = Vec::new();
        for (&site, items) in &groups {
            for (_, entry) in items {
                for dep in entry.deps() {
                    sent.push((dep, site));
                }
            }
        }
        for (dep, site) in sent {
            self.store.note_sent(dep, site);
            self.ensure_inquire(ctx);
        }
        for (site, items) in groups {
            ctx.send(
                site_node(site),
                Msg::Prepare {
                    txn,
                    writes: items,
                },
            );
        }
        self.arm(ctx, self.config.ready_timeout, Purpose::CoordReady(txn));
    }

    fn on_ready(&mut self, ctx: &mut Ctx<Msg>, from: SiteId, txn: TxnId) {
        let Some(coord) = self.coords.get_mut(&txn) else {
            return;
        };
        if coord.phase != CoordPhase::Preparing {
            return;
        }
        coord.readies.insert(from);
        if !coord.readies.is_superset(&coord.write_sites) {
            return;
        }
        // Decide complete, durably, then notify everyone and the client.
        self.store.record_decision(txn, true);
        let coord = self.coords.remove(&txn).expect("checked above");
        self.note_decided(ctx, txn, &coord, true);
        // Sorted union without building a scratch set per decision.
        for &site in coord.read_sites.union(&coord.write_sites) {
            ctx.send(
                site_node(site),
                Msg::Decision {
                    txn,
                    completed: true,
                },
            );
        }
        let result = coord.pending_result.expect("set when preparing");
        self.note_commit_metrics(ctx, &result);
        self.deliver_result(ctx, coord.client, coord.req_id, result);
    }

    /// Sends (or withholds, per §3.4 policy) a committed result to the
    /// client. Withheld results are released by [`Site::learn_outcome`] once
    /// every output is certain; they are volatile, so a coordinator crash
    /// surfaces to the client as a response timeout.
    fn deliver_result(
        &mut self,
        ctx: &mut Ctx<Msg>,
        client: NodeId,
        req_id: u64,
        result: TxnResult,
    ) {
        if self.config.uncertain_outputs == UncertainOutputPolicy::Withhold
            && result.has_uncertain_output()
        {
            ctx.metrics().inc("txn.withheld");
            self.withheld.push((client, req_id, result));
            self.ensure_inquire(ctx);
            return;
        }
        ctx.send(client, Msg::Reply { req_id, result });
    }

    /// Records a coordinator decision in the trace and the phase-latency
    /// histograms (submit→decided always; prepared→decided when the prepare
    /// phase was reached).
    fn note_decided(&self, ctx: &mut Ctx<Msg>, txn: TxnId, coord: &Coord, completed: bool) {
        ctx.trace(TraceEvent::Decided {
            txn: txn.raw(),
            completed,
        });
        let total = ctx.now().since(coord.submitted_at).as_secs_f64();
        ctx.metrics().observe("phase.submit_decided", total);
        if let Some(prepared_at) = coord.prepared_at {
            let vote_phase = ctx.now().since(prepared_at).as_secs_f64();
            ctx.metrics().observe("phase.prepared_decided", vote_phase);
        }
        let by_protocol = Metrics::with_label(
            if completed {
                "txn.decided.complete"
            } else {
                "txn.decided.abort"
            },
            "protocol",
            self.config.protocol.label(),
        );
        ctx.metrics().inc(&by_protocol);
    }

    fn note_commit_metrics(&self, ctx: &mut Ctx<Msg>, result: &TxnResult) {
        ctx.metrics().inc("txn.committed");
        if result.has_uncertain_output() {
            ctx.metrics().inc("txn.uncertain_output");
        }
        if let TxnResult::Committed { granted, .. } = result {
            if granted == &Entry::Simple(Value::Bool(false)) {
                ctx.metrics().inc("txn.denied");
            }
        }
    }

    fn finish_abort(&mut self, ctx: &mut Ctx<Msg>, txn: TxnId, reason: AbortReason) {
        let Some(coord) = self.coords.remove(&txn) else {
            return;
        };
        self.store.record_decision(txn, false);
        self.note_decided(ctx, txn, &coord, false);
        for &site in coord.read_sites.union(&coord.write_sites) {
            ctx.send(
                site_node(site),
                Msg::Decision {
                    txn,
                    completed: false,
                },
            );
        }
        match &reason {
            AbortReason::LockConflict => ctx.metrics().inc("txn.aborted.lock"),
            AbortReason::Timeout => ctx.metrics().inc("txn.aborted.timeout"),
            AbortReason::Eval(_) => ctx.metrics().inc("txn.aborted.eval"),
            // Static rejections are counted at the submit gate and never
            // reach this mid-protocol abort path.
            AbortReason::Rejected(_) => ctx.metrics().inc("txn.rejected.static"),
        }
        ctx.send(
            coord.client,
            Msg::Reply {
                req_id: coord.req_id,
                result: TxnResult::Aborted { reason },
            },
        );
    }

    // ---- participant role ---------------------------------------------------

    fn on_read_req(
        &mut self,
        ctx: &mut Ctx<Msg>,
        from: SiteId,
        txn: TxnId,
        ts: u64,
        items: Vec<(ItemId, AccessMode)>,
    ) {
        if self.revoked.contains(&txn) || items.iter().any(|&(item, _)| !self.store.contains(item))
        {
            ctx.send(site_node(from), Msg::ReadNack { txn });
            return;
        }
        match self.try_serve_read(ctx, from, txn, ts, &items) {
            ServeOutcome::Served => {}
            ServeOutcome::Refused => {
                ctx.metrics().inc("lock.conflicts");
                ctx.send(site_node(from), Msg::ReadNack { txn });
            }
            ServeOutcome::Queued => {
                ctx.metrics().inc("lock.queued");
                self.read_queue.push(QueuedRead {
                    ts,
                    txn,
                    from,
                    items,
                });
                self.arm(ctx, self.config.read_lease, Purpose::QueueExpire(txn));
            }
        }
    }

    /// Attempts to lock and answer a read request, applying the configured
    /// conflict policy. All items are known to exist.
    fn try_serve_read(
        &mut self,
        ctx: &mut Ctx<Msg>,
        from: SiteId,
        txn: TxnId,
        ts: u64,
        items: &[(ItemId, AccessMode)],
    ) -> ServeOutcome {
        let mut holders: BTreeSet<TxnId> = BTreeSet::new();
        for &(item, mode) in items {
            holders.extend(self.locks.conflicts(txn, item, mode == AccessMode::Write));
        }
        if !holders.is_empty() {
            match self.config.lock_policy {
                LockPolicy::NoWait => return ServeOutcome::Refused,
                LockPolicy::WoundWait => {
                    // An older requester wounds *all* of its blockers, but
                    // only if every one is younger and not yet in the wait
                    // phase (a staged transaction must never be aborted
                    // unilaterally). Otherwise the requester queues.
                    let can_wound = holders.iter().all(|h| {
                        self.parts
                            .get(h)
                            .is_some_and(|p| !p.staged && (ts, txn) < (p.ts, *h))
                    });
                    if !can_wound {
                        return ServeOutcome::Queued;
                    }
                    for victim in holders {
                        self.wound(ctx, victim);
                    }
                }
            }
        }
        for &(item, mode) in items {
            let ok = match mode {
                AccessMode::Read => self.locks.try_read(txn, item),
                AccessMode::Write => self.locks.try_write(txn, item),
            };
            debug_assert!(ok, "acquisition after conflict resolution cannot fail");
        }
        let mut entries = Vec::with_capacity(items.len());
        let mut sent: Vec<TxnId> = Vec::new();
        for &(item, _) in items {
            let entry = self.store.get(item).expect("existence checked").clone();
            sent.extend(entry.deps());
            entries.push((item, entry));
        }
        // §3.3: uncertainty is being shipped to the coordinator.
        for dep in sent {
            self.store.note_sent(dep, from);
            self.ensure_inquire(ctx);
        }
        self.parts.insert(
            txn,
            Part {
                staged: false,
                coordinator: from,
                ts,
            },
        );
        self.arm(ctx, self.config.read_lease, Purpose::ReadLease(txn));
        ctx.send(site_node(from), Msg::ReadResp { txn, entries });
        ServeOutcome::Served
    }

    /// Wound-wait eviction: locally aborts a younger, not-yet-staged lock
    /// holder and tells its coordinator to abort the transaction.
    fn wound(&mut self, ctx: &mut Ctx<Msg>, victim: TxnId) {
        let Some(part) = self.parts.remove(&victim) else {
            return;
        };
        debug_assert!(!part.staged, "staged transactions are never wounded");
        self.locks.release_all(victim);
        self.revoked.insert(victim);
        ctx.metrics().inc("lock.wounds");
        ctx.send(
            site_node(part.coordinator),
            Msg::PrepareNack { txn: victim },
        );
    }

    /// Retries parked read requests, oldest first, after locks were freed.
    fn drain_read_queue(&mut self, ctx: &mut Ctx<Msg>) {
        if self.read_queue.is_empty() {
            return;
        }
        let mut queue = std::mem::take(&mut self.read_queue);
        queue.sort_by_key(|q| (q.ts, q.txn));
        for q in queue {
            if self.revoked.contains(&q.txn) {
                continue; // expired or aborted while parked
            }
            match self.try_serve_read(ctx, q.from, q.txn, q.ts, &q.items) {
                ServeOutcome::Served => {
                    ctx.metrics().inc("lock.queue_served");
                }
                ServeOutcome::Refused => {
                    ctx.send(site_node(q.from), Msg::ReadNack { txn: q.txn });
                }
                ServeOutcome::Queued => self.read_queue.push(q),
            }
        }
    }

    fn on_prepare(
        &mut self,
        ctx: &mut Ctx<Msg>,
        from: SiteId,
        txn: TxnId,
        writes: Vec<(ItemId, Entry<Value>)>,
    ) {
        // A prepare without a live read lease (crash, revocation) is refused:
        // the values the coordinator computed may be stale.
        let Some(part) = self.parts.get_mut(&txn) else {
            ctx.send(site_node(from), Msg::PrepareNack { txn });
            return;
        };
        // A duplicated Prepare (network-level duplication, or a coordinator
        // retry) must be idempotent: the writes are already staged, so just
        // re-affirm readiness without re-staging or re-tracing.
        if part.staged && self.store.pending(txn).is_some() {
            ctx.send(site_node(from), Msg::Ready { txn });
            return;
        }
        part.staged = true;
        self.store.stage(txn, from, writes);
        ctx.trace(TraceEvent::Prepared {
            txn: txn.raw(),
            site: self.id,
        });
        self.arm(ctx, self.config.wait_timeout, Purpose::PartWait(txn));
        ctx.send(site_node(from), Msg::Ready { txn });
    }

    fn on_decision(&mut self, ctx: &mut Ctx<Msg>, txn: TxnId, completed: bool) {
        self.locks.release_all(txn);
        self.parts.remove(&txn);
        // A decided transaction has nothing to wait for: drop any parked
        // read request it still has (e.g. the coordinator aborted on timeout
        // while the request sat in the wound-wait queue).
        self.read_queue.retain(|q| q.txn != txn);
        self.learn_outcome(ctx, txn, completed);
        self.drain_read_queue(ctx);
    }

    /// Common path for Decision and OutcomeNotify: apply the outcome to the
    /// store, forward along the §3.3 `sent_to` list, and account for any
    /// unilateral relaxed action.
    fn learn_outcome(&mut self, ctx: &mut Ctx<Msg>, txn: TxnId, completed: bool) {
        // Release withheld replies whose uncertainty this outcome resolves.
        if !self.withheld.is_empty() {
            let mut still_withheld = Vec::with_capacity(self.withheld.len());
            for (client, req_id, result) in std::mem::take(&mut self.withheld) {
                let reduced = result.reduce(txn, completed);
                if reduced.has_uncertain_output() {
                    still_withheld.push((client, req_id, reduced));
                } else {
                    ctx.metrics().inc("txn.withheld_released");
                    ctx.send(
                        client,
                        Msg::Reply {
                            req_id,
                            result: reduced,
                        },
                    );
                }
            }
            self.withheld = still_withheld;
        }
        if let Some(action) = self.relaxed_actions.remove(&txn) {
            if action != completed {
                ctx.metrics().inc("relaxed.violations");
            }
        }
        // A formerly in-doubt transaction resolving closes the uncertainty
        // window here: its polyvalues collapse and the lifetime is recorded.
        if let Some(installed_at) = self.poly_installed_at.remove(&txn) {
            let lifetime = ctx.now().since(installed_at);
            ctx.trace(TraceEvent::OutcomeLearned {
                txn: txn.raw(),
                site: self.id,
                completed,
            });
            ctx.metrics().observe("poly.lifetime", lifetime.as_secs_f64());
            ctx.trace(TraceEvent::PolyvalueCollapsed {
                txn: txn.raw(),
                site: self.id,
                lifetime_us: lifetime.as_micros(),
            });
        }
        let dep = self.store.apply_decision(txn, completed);
        for site in dep.sent_to {
            if site != self.id {
                ctx.metrics().inc("outcome.forwarded");
                ctx.trace(TraceEvent::OutcomeForwarded {
                    txn: txn.raw(),
                    site: self.id,
                    to: site,
                });
                ctx.send(site_node(site), Msg::OutcomeNotify { txn, completed });
            }
        }
        self.store.maybe_compact();
    }

    fn on_wait_timeout(&mut self, ctx: &mut Ctx<Msg>, txn: TxnId) {
        let Some(part) = self.parts.get(&txn) else {
            return;
        };
        if !part.staged || self.store.pending(txn).is_none() {
            return;
        }
        ctx.metrics().inc("txn.in_doubt");
        ctx.trace(TraceEvent::WaitTimedOut {
            txn: txn.raw(),
            site: self.id,
        });
        match self.config.protocol {
            CommitProtocol::Polyvalue => {
                // Figure 1's wait → idle edge: install in-doubt polyvalues
                // and release everything.
                let installed = self.store.install_in_doubt(txn);
                ctx.metrics()
                    .inc_by("poly.installed_items", installed.len() as u64);
                ctx.trace(TraceEvent::PolyvalueInstalled {
                    txn: txn.raw(),
                    site: self.id,
                    items: installed.len() as u32,
                });
                self.poly_installed_at.insert(txn, ctx.now());
                let now = ctx.now();
                for item in &installed {
                    if let Some(entry) = self.store.get(*item) {
                        ctx.metrics().gauge("poly.depth", now, entry.deps().len() as f64);
                        ctx.metrics().gauge("poly.width", now, entry.pair_count() as f64);
                    }
                }
                self.locks.release_all(txn);
                self.parts.remove(&txn);
                self.ensure_inquire(ctx);
                self.drain_read_queue(ctx);
            }
            CommitProtocol::Blocking2pc => {
                // Keep locks and staging; the items stay unavailable until
                // the outcome is learned.
                ctx.metrics().inc("blocking.stalls");
                self.ensure_inquire(ctx);
            }
            CommitProtocol::Relaxed { complete_prob } => {
                let completed = ctx.rng().chance(complete_prob);
                ctx.metrics().inc("relaxed.unilateral");
                self.store.apply_decision(txn, completed);
                self.relaxed_actions.insert(txn, completed);
                self.locks.release_all(txn);
                self.parts.remove(&txn);
                self.ensure_inquire(ctx);
                self.drain_read_queue(ctx);
            }
        }
    }

    fn on_read_lease_expired(&mut self, ctx: &mut Ctx<Msg>, txn: TxnId) {
        let Some(part) = self.parts.get(&txn) else {
            return;
        };
        if part.staged {
            return; // the wait timer governs staged transactions
        }
        self.locks.release_all(txn);
        self.parts.remove(&txn);
        self.revoked.insert(txn);
        self.drain_read_queue(ctx);
    }

    /// A parked read request waited too long: refuse it.
    fn on_queue_expired(&mut self, ctx: &mut Ctx<Msg>, txn: TxnId) {
        let Some(pos) = self.read_queue.iter().position(|q| q.txn == txn) else {
            return; // already served or dropped
        };
        let q = self.read_queue.remove(pos);
        self.revoked.insert(txn);
        ctx.metrics().inc("lock.queue_expired");
        ctx.send(site_node(q.from), Msg::ReadNack { txn });
    }

    fn on_inquire_tick(&mut self, ctx: &mut Ctx<Msg>) {
        self.inquire_armed = false;
        let mut targets: BTreeSet<TxnId> = BTreeSet::new();
        targets.extend(self.store.tracked_txns());
        targets.extend(self.store.pending_txns());
        targets.extend(self.relaxed_actions.keys().copied());
        for (_, _, result) in &self.withheld {
            targets.extend(result.deps());
        }
        if targets.is_empty() {
            return;
        }
        for txn in targets {
            ctx.metrics().inc("inquire.sent");
            ctx.send(site_node(coordinator_of(txn)), Msg::Inquire { txn });
        }
        self.ensure_inquire(ctx);
    }

    fn on_inquire(&mut self, ctx: &mut Ctx<Msg>, from: SiteId, txn: TxnId) {
        let completed = match self.store.decision_of(txn) {
            Some(o) => o,
            None => {
                if self.coords.contains_key(&txn) {
                    return; // still deciding; the asker will retry
                }
                // Presumed abort: no durable completion was recorded.
                self.store.record_decision(txn, false);
                false
            }
        };
        ctx.send(site_node(from), Msg::OutcomeNotify { txn, completed });
    }

    /// Drains the store's accumulated storage/recovery statistics into the
    /// shared metrics registry. Called after every actor callback so the
    /// counters track the WAL in near-real time without the store needing a
    /// metrics handle of its own.
    fn flush_storage_metrics(&mut self, ctx: &mut Ctx<Msg>) {
        let stats = self.store.take_stats();
        if stats.is_empty() {
            return;
        }
        ctx.metrics().inc_by("wal.bytes", stats.wal_bytes);
        ctx.metrics().inc_by("wal.appends", stats.wal_appends);
        ctx.metrics().inc_by("wal.syncs", stats.wal_syncs);
        ctx.metrics().inc_by("wal.segments", stats.wal_segments);
        ctx.metrics().inc_by("wal.compactions", stats.wal_compactions);
        ctx.metrics()
            .inc_by("recovery.replay_records", stats.recovery_replay_records);
        ctx.metrics()
            .inc_by("recovery.truncations", stats.recovery_truncations);
        if self.wall_clock_metrics {
            for d in stats.recovery_durations {
                ctx.metrics().observe("recovery.duration", d);
            }
        }
    }

    fn on_outcome_notify(&mut self, ctx: &mut Ctx<Msg>, txn: TxnId, completed: bool) {
        // A blocked (or still-waiting) participant is released by the news.
        if self.parts.remove(&txn).is_some() {
            self.locks.release_all(txn);
        }
        self.learn_outcome(ctx, txn, completed);
        self.drain_read_queue(ctx);
    }
}

impl Actor for Site {
    type Msg = Msg;

    fn on_message(&mut self, ctx: &mut Ctx<Msg>, from: NodeId, msg: Msg) {
        let from_site: SiteId = from.0;
        match msg {
            Msg::Submit { req_id, spec } => self.on_submit(ctx, from, req_id, spec),
            Msg::ReadReq { txn, ts, items } => self.on_read_req(ctx, from_site, txn, ts, items),
            Msg::ReadResp { txn, entries } => self.on_read_resp(ctx, from_site, txn, entries),
            Msg::ReadNack { txn } => self.finish_abort(ctx, txn, AbortReason::LockConflict),
            Msg::Prepare { txn, writes } => self.on_prepare(ctx, from_site, txn, writes),
            Msg::Ready { txn } => self.on_ready(ctx, from_site, txn),
            Msg::PrepareNack { txn } => self.finish_abort(ctx, txn, AbortReason::LockConflict),
            Msg::Decision { txn, completed } => self.on_decision(ctx, txn, completed),
            Msg::Inquire { txn } => self.on_inquire(ctx, from_site, txn),
            Msg::OutcomeNotify { txn, completed } => self.on_outcome_notify(ctx, txn, completed),
            Msg::Reply { .. } => {
                debug_assert!(false, "sites do not receive replies");
            }
        }
        self.flush_storage_metrics(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<Msg>, key: u64) {
        let Some(purpose) = self.timer_purposes.remove(&key) else {
            return;
        };
        match purpose {
            Purpose::CoordRead(txn) => {
                if self
                    .coords
                    .get(&txn)
                    .is_some_and(|c| c.phase == CoordPhase::Reading)
                {
                    self.finish_abort(ctx, txn, AbortReason::Timeout);
                }
            }
            Purpose::CoordReady(txn) => {
                if self
                    .coords
                    .get(&txn)
                    .is_some_and(|c| c.phase == CoordPhase::Preparing)
                {
                    self.finish_abort(ctx, txn, AbortReason::Timeout);
                }
            }
            Purpose::PartWait(txn) => self.on_wait_timeout(ctx, txn),
            Purpose::ReadLease(txn) => self.on_read_lease_expired(ctx, txn),
            Purpose::QueueExpire(txn) => self.on_queue_expired(ctx, txn),
            Purpose::Inquire => self.on_inquire_tick(ctx),
        }
        self.flush_storage_metrics(ctx);
    }

    fn on_crash(&mut self) {
        // Volatile state is gone; the store survives via its WAL.
        self.locks.clear();
        self.coords.clear();
        self.parts.clear();
        self.revoked.clear();
        self.relaxed_actions.clear();
        self.timer_purposes.clear();
        self.inquire_armed = false;
        self.withheld.clear();
        self.read_queue.clear();
        self.poly_installed_at.clear();
        self.store.crash_and_recover();
    }

    fn on_recover(&mut self, ctx: &mut Ctx<Msg>) {
        // Fresh epoch so new transaction ids cannot collide with pre-crash
        // ones; fresh counter within the epoch.
        self.store.bump_epoch();
        self.txn_counter = 0;
        // Staged wait-phase transactions survived in the WAL: re-acquire
        // their write locks and resume waiting per Figure 1.
        for txn in self.store.pending_txns() {
            let writes: Vec<ItemId> = self
                .store
                .pending(txn)
                .expect("listed as pending")
                .writes
                .iter()
                .map(|(item, _)| *item)
                .collect();
            for item in writes {
                let ok = self.locks.try_write(txn, item);
                debug_assert!(ok, "locks are free right after recovery");
            }
            let coordinator = self
                .store
                .pending(txn)
                .expect("listed as pending")
                .coordinator;
            self.parts.insert(
                txn,
                Part {
                    staged: true,
                    coordinator,
                    ts: 0,
                },
            );
            self.arm(ctx, self.config.wait_timeout, Purpose::PartWait(txn));
        }
        if self.store.has_tracked_txns() || !self.store.pending_txns().is_empty() {
            self.ensure_inquire(ctx);
        }
        self.flush_storage_metrics(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_core::SplitMode;

    fn site() -> Site {
        Site::new(0, EngineConfig::default(), Directory::Mod(1))
    }

    #[test]
    fn seed_and_accessors() {
        let mut s = site();
        s.seed_item(ItemId(0), Value::Int(5));
        assert_eq!(s.id(), 0);
        assert_eq!(
            s.store().get(ItemId(0)),
            Some(&Entry::Simple(Value::Int(5)))
        );
        assert_eq!(s.poly_count(), 0);
        assert!(s.is_quiescent());
    }

    #[test]
    fn txn_ids_are_unique_and_carry_site() {
        let mut s = Site::new(3, EngineConfig::default(), Directory::Mod(4));
        let a = s.new_txn();
        let b = s.new_txn();
        assert_ne!(a, b);
        assert_eq!(coordinator_of(a), 3);
        assert_eq!(coordinator_of(b), 3);
    }

    #[test]
    fn config_split_mode_is_respected_in_construction() {
        let cfg = EngineConfig {
            split_mode: SplitMode::Eager,
            ..EngineConfig::default()
        };
        let s = Site::new(0, cfg, Directory::Mod(1));
        assert_eq!(s.config.split_mode, SplitMode::Eager);
    }
}
