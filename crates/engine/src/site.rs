//! The site actor: a thin driver mapping the sans-IO [`SiteMachine`] onto
//! the simulation substrate.
//!
//! All protocol logic — both roles of the §3.1 protocol, Figure 1's
//! participant machine, and the §3.3 recovery manager — lives in
//! `pv-protocol`. This actor owns what the pure machine cannot: the durable
//! [`SiteStore`] it lends to every step, the mapping of
//! [`Output`](pv_protocol::Output) effects onto the actor `Ctx` (sends,
//! timers, traces, metrics), the randomness for
//! [`Output::NeedCoin`](pv_protocol::Output::NeedCoin), the opt-in static
//! submit gate (which needs `pv-analysis`), and the storage-metrics flush.
//! Timer keys cross the untyped `u64` timer facility via
//! [`TimerKey::encode`]/[`TimerKey::decode`].
//!
//! Cluster convention: site `s` is simulation node `NodeId(s)`; clients use
//! higher node ids.

use crate::config::EngineConfig;
use crate::directory::Directory;
use crate::messages::{AbortReason, Msg, TxnResult};
use pv_protocol::timer::TimerKey;
use pv_protocol::{Input, MetricOp, Output, SiteMachine};
use pv_simnet::{Actor, Ctx, NodeId};
use pv_store::{SiteId, SiteStore};

pub use pv_protocol::site_node;

/// One site of the distributed database: the protocol machine plus its
/// durable store and the driver glue.
pub struct Site {
    machine: SiteMachine,
    store: SiteStore,
    /// Whether wall-clock storage observations (recovery durations) flow
    /// into the metrics. Off in the simulation, which must keep its metric
    /// exports byte-deterministic under a seed; the live runtime opts in.
    wall_clock_metrics: bool,
}

impl Site {
    /// Creates a site with an empty store.
    pub fn new(id: SiteId, config: EngineConfig, directory: Directory) -> Self {
        let store = SiteStore::new();
        Site::with_store(id, config, directory, store)
    }

    /// Creates a site over an existing store — typically one opened from a
    /// durable [`pv_store::Storage`] backend, possibly holding a recovered
    /// image from a previous incarnation of this site.
    pub fn with_store(
        id: SiteId,
        config: EngineConfig,
        directory: Directory,
        store: SiteStore,
    ) -> Self {
        let store = store
            .with_compact_threshold(config.compact_threshold)
            .with_lsm_thresholds(config.memtable_threshold, config.run_threshold);
        Site {
            machine: SiteMachine::new(id, config, directory),
            store,
            wall_clock_metrics: false,
        }
    }

    /// Loads an item this site is home to (initial database population).
    pub fn seed_item(&mut self, item: pv_core::ItemId, value: pv_core::Value) {
        debug_assert_eq!(self.machine.directory().site_of(item), Some(self.machine.id()));
        self.store.seed_item(item, value);
    }

    /// This site's id.
    pub fn id(&self) -> SiteId {
        self.machine.id()
    }

    /// Read access to the site's store (assertions, polyvalue census).
    pub fn store(&self) -> &SiteStore {
        &self.store
    }

    /// Read access to the protocol machine (tests, diagnostics).
    pub fn machine(&self) -> &SiteMachine {
        &self.machine
    }

    /// Forces the store's storage backend to persist everything buffered —
    /// the clean-shutdown path of a live deployment.
    pub fn sync_store(&mut self) {
        self.store.sync();
    }

    /// Opts into wall-clock storage metrics (the `recovery.duration`
    /// histogram). Only a real-time runtime should enable this: the
    /// simulation leaves it off so same-seed metric exports stay
    /// byte-identical.
    pub fn enable_wall_clock_metrics(&mut self) {
        self.wall_clock_metrics = true;
    }

    /// Number of items currently holding polyvalues at this site.
    pub fn poly_count(&self) -> usize {
        self.store.poly_count()
    }

    /// Whether the site has any protocol state in flight (volatile or
    /// staged) — used by tests to check quiescence.
    pub fn is_quiescent(&self) -> bool {
        self.machine.is_idle()
            && self.store.pending_txns().is_empty()
            && !self.store.has_tracked_txns()
    }

    /// Advances the machine by one input and applies the resulting effects
    /// to the `Ctx`, **in emission order** (the simulation draws network
    /// randomness per send, so reordering would change behaviour under a
    /// seed). A [`Output::NeedCoin`] request is answered from the node's RNG
    /// and fed back into the machine at its position in the effect stream.
    fn drive(&mut self, ctx: &mut Ctx<Msg>, input: Input) {
        let mut out = Vec::new();
        self.machine.step(ctx.now(), input, &mut self.store, &mut out);
        let mut i = 0;
        while i < out.len() {
            match std::mem::replace(&mut out[i], Output::Metric(MetricOp::IncBy("", 0))) {
                Output::Send { to, msg } => ctx.send(to, msg),
                Output::ArmTimer { delay, key } => {
                    ctx.set_timer(delay, key.encode());
                }
                Output::Trace(ev) => ctx.trace(ev),
                Output::Metric(op) => match op {
                    MetricOp::Inc(name) => ctx.metrics().inc(name),
                    MetricOp::IncOwned(name) => ctx.metrics().inc(&name),
                    MetricOp::IncBy(name, n) => {
                        if !name.is_empty() {
                            ctx.metrics().inc_by(name, n);
                        }
                    }
                    MetricOp::Observe(name, v) => ctx.metrics().observe(name, v),
                    MetricOp::Gauge(name, v) => {
                        let now = ctx.now();
                        ctx.metrics().gauge(name, now, v);
                    }
                },
                Output::NeedCoin { txn, complete_prob } => {
                    let completed = ctx.rng().chance(complete_prob);
                    let mut follow = Vec::new();
                    self.machine.step(
                        ctx.now(),
                        Input::Coin { txn, completed },
                        &mut self.store,
                        &mut follow,
                    );
                    // Splice the follow-up effects in place of the request so
                    // the overall effect order matches the machine's.
                    out.splice(i + 1..i + 1, follow);
                }
            }
            i += 1;
        }
    }

    /// Drains the store's accumulated storage/recovery statistics into the
    /// shared metrics registry. Called after every actor callback so the
    /// counters track the WAL in near-real time without the store needing a
    /// metrics handle of its own.
    fn flush_storage_metrics(&mut self, ctx: &mut Ctx<Msg>) {
        let stats = self.store.take_stats();
        if stats.is_empty() {
            return;
        }
        ctx.metrics().inc_by("wal.bytes", stats.wal_bytes);
        ctx.metrics().inc_by("wal.appends", stats.wal_appends);
        ctx.metrics().inc_by("wal.syncs", stats.wal_syncs);
        ctx.metrics().inc_by("wal.segments", stats.wal_segments);
        ctx.metrics().inc_by("wal.compactions", stats.wal_compactions);
        ctx.metrics()
            .inc_by("recovery.replay_records", stats.recovery_replay_records);
        ctx.metrics()
            .inc_by("recovery.truncations", stats.recovery_truncations);
        ctx.metrics().inc_by("store.flushes", stats.lsm_flushes);
        ctx.metrics().inc_by("store.compactions", stats.lsm_compactions);
        ctx.metrics().inc_by("store.gc_dropped", stats.lsm_gc_dropped);
        ctx.metrics().inc_by("store.runs_written", stats.lsm_runs_written);
        ctx.metrics().inc_by("store.snapshot_reads", stats.snapshot_reads);
        let now = ctx.now();
        ctx.metrics()
            .gauge("store.memtable_bytes", now, self.store.lsm_memtable_bytes() as f64);
        ctx.metrics().gauge("store.runs", now, self.store.lsm_runs() as f64);
        ctx.metrics()
            .gauge("store.mvcc_versions", now, self.store.mvcc_versions() as f64);
        ctx.metrics()
            .gauge("store.snapshot_age", now, self.store.snapshot_age() as f64);
        if self.wall_clock_metrics {
            for d in stats.recovery_durations {
                ctx.metrics().observe("recovery.duration", d);
            }
        }
    }

    /// Serves a coordination-free read-only transaction directly against
    /// the store: acquires a snapshot sequence number, reads `items` (all
    /// items when empty) at that point in time, and returns
    /// `(snapshot, entries)`. Emits the snapshot-read trace event and the
    /// `store.snapshot_reads` counter; touches no lock table and sends no
    /// protocol messages.
    pub fn snapshot_read(
        &mut self,
        ctx: &mut Ctx<Msg>,
        items: &[pv_core::ItemId],
    ) -> (u64, Vec<(pv_core::ItemId, pv_core::Entry<pv_core::Value>)>) {
        let (snap, entries) = self.store.snapshot_read(items);
        ctx.trace(pv_simnet::TraceEvent::SnapshotRead {
            site: self.machine.id(),
            snapshot: snap,
            items: entries.len() as u32,
        });
        self.flush_storage_metrics(ctx);
        (snap, entries)
    }
}

impl Actor for Site {
    type Msg = Msg;

    fn on_message(&mut self, ctx: &mut Ctx<Msg>, from: NodeId, msg: Msg) {
        // The opt-in submit gate: reject statically wrong transactions
        // before burning protocol work on them. Rejections are final (the
        // spec itself is wrong), so clients do not retry them. The gate
        // lives in the driver — the protocol crate must not depend on
        // `pv-analysis` (which depends back on it for trace checking).
        if let Msg::Submit { req_id, spec } = &msg {
            if self.machine.config().static_checks {
                if let Err(report) = pv_analysis::gate_spec(spec) {
                    // The machine never sees the submission, so count it
                    // (and the rejection) here.
                    ctx.metrics().inc("txn.submitted");
                    ctx.metrics().inc("txn.rejected.static");
                    let result = TxnResult::Aborted {
                        reason: AbortReason::Rejected(report),
                    };
                    let req_id = *req_id;
                    ctx.send(from, Msg::Reply { req_id, result });
                    self.flush_storage_metrics(ctx);
                    return;
                }
            }
        }
        self.drive(ctx, Input::Msg { from, msg });
        self.flush_storage_metrics(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<Msg>, key: u64) {
        let Some(key) = TimerKey::decode(key) else {
            debug_assert!(false, "undecodable timer key {key:#x}");
            return;
        };
        self.drive(ctx, Input::Timer(key));
        self.flush_storage_metrics(ctx);
    }

    fn on_crash(&mut self) {
        // Volatile state is gone; the store survives via its WAL. Armed
        // timers die with the node at the substrate level.
        self.machine.crash();
        self.store.crash_and_recover();
    }

    fn on_recover(&mut self, ctx: &mut Ctx<Msg>) {
        self.drive(ctx, Input::Recovered);
        self.flush_storage_metrics(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_core::{Entry, ItemId, SplitMode, Value};

    fn site() -> Site {
        Site::new(0, EngineConfig::default(), Directory::Mod(1))
    }

    #[test]
    fn seed_and_accessors() {
        let mut s = site();
        s.seed_item(ItemId(0), Value::Int(5));
        assert_eq!(s.id(), 0);
        assert_eq!(s.store().get(ItemId(0)), Some(Entry::Simple(Value::Int(5))));
        assert_eq!(s.poly_count(), 0);
        assert!(s.is_quiescent());
    }

    #[test]
    fn config_split_mode_is_respected_in_construction() {
        let cfg = EngineConfig {
            split_mode: SplitMode::Eager,
            ..EngineConfig::default()
        };
        let s = Site::new(0, cfg, Directory::Mod(1));
        assert_eq!(s.machine().config().split_mode, SplitMode::Eager);
    }
}
