//! # pv-engine — the distributed polyvalue transaction engine
//!
//! Sites run the two-phase protocol of §3.1 over the `pv-simnet` substrate:
//! a coordinator gathers (and locks) the items a transaction touches, runs
//! the polytransaction evaluator from `pv-core`, ships computed writes to the
//! participant sites, and decides complete/abort. A participant whose wait
//! phase times out acts per the configured [`CommitProtocol`]:
//!
//! * [`CommitProtocol::Polyvalue`] — install in-doubt polyvalues
//!   `{⟨new, T⟩, ⟨old, ¬T⟩}` and release locks (the paper's mechanism);
//! * [`CommitProtocol::Blocking2pc`] — keep locks until the outcome is known
//!   (the §2.2 baseline);
//! * [`CommitProtocol::Relaxed`] — decide unilaterally, possibly violating
//!   atomicity (the §2.3 baseline; violations are counted).
//!
//! Outcome propagation after failure recovery follows §3.3: every site keeps
//! a table of in-doubt transactions, the local items depending on them, and
//! the sites it has shipped dependent polyvalues to; learned outcomes reduce
//! local polyvalues and are forwarded along the table, then the entry is
//! forgotten.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod cluster;
pub mod crashpoint;
pub mod error;
pub mod live;
pub mod site;
pub mod topology;
pub mod workload;

// The protocol itself — configuration, directory, ids, locks, the message
// vocabulary, and the Figure-1 participant machine — lives in the sans-IO
// `pv-protocol` crate; re-export its modules under their historical paths.
pub use pv_protocol::{config, directory, ids, locks, messages, participant};

pub use client::{Client, ClientConfig};
pub use cluster::{Cluster, ClusterBuilder, Node};
pub use crashpoint::{CrashPointConfig, CrashPointReport, Violation};
pub use config::{CommitProtocol, EngineConfig, LockPolicy, UncertainOutputPolicy};
pub use directory::Directory;
pub use error::EngineError;
pub use ids::{coordinator_of, encode_txn};
pub use live::{LiveBuilder, LiveCluster, SiteSnapshot};
pub use messages::{AbortReason, AccessMode, Msg, TxnResult};
pub use site::{site_node, Site};
pub use topology::{BackoffConfig, RuntimeConfig, Topology};
pub use workload::{RandomTransfers, Script, UniformRmw, Workload};
