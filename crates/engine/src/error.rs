//! The engine's unified error type.
//!
//! Every fallible public operation — simulated-cluster accessors, live-cluster
//! calls, consistency checks — returns [`EngineError`] instead of panicking,
//! so embedding code can react to a bad site id or an unsettled item the same
//! way it reacts to a live-runtime timeout.

use pv_core::ItemId;
use pv_store::SiteId;
use std::fmt;

/// Anything that can go wrong when interacting with a cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// No reply arrived within the deadline (live runtime).
    Timeout,
    /// The cluster is shutting down (live runtime).
    Disconnected,
    /// The given site id does not name a site of this cluster.
    UnknownSite(SiteId),
    /// The given client index does not name a client of this cluster.
    UnknownClient(usize),
    /// The directory places this item at no site.
    UnplacedItem(ItemId),
    /// The item's home site does not hold it.
    MissingItem(ItemId),
    /// The item was expected to be a settled integer but is not (it is
    /// polyvalued, or holds a different type).
    NotAnInt(ItemId),
    /// The static checks rejected the transaction before submission (the
    /// `static_checks` gate). Carries the rendered diagnostics.
    Rejected(String),
    /// A message failed to encode for the wire (networked runtime). Carries
    /// the rendered `pv_net::wire::EncodeError`.
    Encode(String),
    /// Received bytes failed to decode as a wire frame (networked runtime).
    /// Carries the rendered `pv_net::wire::DecodeError`.
    Decode(String),
    /// A socket operation failed in the networked runtime.
    Io(String),
    /// A peer site could not be reached within the configured retry budget
    /// (networked runtime). Carries what was being attempted.
    Unreachable {
        /// The unreachable site.
        site: SiteId,
        /// What failed (address, attempt count, last OS error).
        detail: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Timeout => write!(f, "no reply within the deadline"),
            EngineError::Disconnected => write!(f, "cluster is shut down"),
            EngineError::UnknownSite(s) => write!(f, "no such site: s{s}"),
            EngineError::UnknownClient(i) => write!(f, "no such client: index {i}"),
            EngineError::UnplacedItem(item) => write!(f, "{item} is placed at no site"),
            EngineError::MissingItem(item) => write!(f, "{item} is absent from its home site"),
            EngineError::NotAnInt(item) => write!(f, "{item} is not a settled integer"),
            EngineError::Rejected(report) => {
                write!(f, "rejected by static checks: {report}")
            }
            EngineError::Encode(e) => write!(f, "wire encode failed: {e}"),
            EngineError::Decode(e) => write!(f, "wire decode failed: {e}"),
            EngineError::Io(e) => write!(f, "network I/O failed: {e}"),
            EngineError::Unreachable { site, detail } => {
                write!(f, "site s{site} unreachable: {detail}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_subject() {
        assert_eq!(
            EngineError::UnknownSite(3).to_string(),
            "no such site: s3"
        );
        assert_eq!(
            EngineError::MissingItem(ItemId(7)).to_string(),
            "item7 is absent from its home site"
        );
        assert_eq!(EngineError::Timeout.to_string(), "no reply within the deadline");
    }

    #[test]
    fn wire_variants_display_their_detail() {
        assert_eq!(
            EngineError::Decode("bad magic 0xdead".into()).to_string(),
            "wire decode failed: bad magic 0xdead"
        );
        assert_eq!(
            EngineError::Encode("frame too large".into()).to_string(),
            "wire encode failed: frame too large"
        );
        assert_eq!(
            EngineError::Io("connection reset".into()).to_string(),
            "network I/O failed: connection reset"
        );
        let e = EngineError::Unreachable {
            site: 2,
            detail: "127.0.0.1:7102 after 5 attempts".into(),
        };
        assert_eq!(
            e.to_string(),
            "site s2 unreachable: 127.0.0.1:7102 after 5 attempts"
        );
    }

    #[test]
    fn implements_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&EngineError::Disconnected);
    }
}
