//! The participant state machine of Figure 1.
//!
//! The paper's Figure 1 gives each site three states for a transaction —
//! *idle*, *compute*, and *wait* — with the distinguishing polyvalue edge:
//! a wait-phase timeout installs polyvalues and returns to idle instead of
//! blocking. This module is the pure transition function; the site actor
//! drives it, and the `figure1` benchmark binary prints the reachable
//! transition table directly from this code.

use std::fmt;

/// A site's per-transaction protocol state (Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartPhase {
    /// No work in progress for the transaction.
    Idle,
    /// Computing the transaction's results (serving reads, staging writes).
    Compute,
    /// Results computed and `ready` sent; awaiting the outcome.
    Wait,
}

/// Events that drive the participant state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartEvent {
    /// The site begins computing for a new transaction.
    Begin,
    /// Results computed promptly; the site reports `ready`.
    ComputeDone,
    /// A failure prevented prompt computation (or an abort arrived while
    /// computing).
    ComputeFailed,
    /// The coordinator's `complete` message arrived.
    Complete,
    /// The coordinator's `abort` message arrived.
    Abort,
    /// Neither `complete` nor `abort` arrived promptly.
    Timeout,
}

/// The action a transition requires of the site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartAction {
    /// Nothing beyond the state change.
    None,
    /// Send `ready` to the coordinator.
    SendReady,
    /// Install the computed values (the transaction completed).
    Install,
    /// Discard the computed values (the transaction aborted or failed).
    Discard,
    /// Install in-doubt polyvalues `{⟨new, T⟩, ⟨old, ¬T⟩}` and release locks
    /// — the paper's contribution; baselines replace this action.
    InstallPolyvalues,
}

impl fmt::Display for PartPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PartPhase::Idle => "idle",
            PartPhase::Compute => "compute",
            PartPhase::Wait => "wait",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for PartEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PartEvent::Begin => "begin transaction",
            PartEvent::ComputeDone => "results computed promptly",
            PartEvent::ComputeFailed => "failure during compute / abort",
            PartEvent::Complete => "complete received",
            PartEvent::Abort => "abort received",
            PartEvent::Timeout => "no message promptly",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for PartAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PartAction::None => "-",
            PartAction::SendReady => "send ready",
            PartAction::Install => "install results",
            PartAction::Discard => "discard results",
            PartAction::InstallPolyvalues => "install polyvalues",
        };
        write!(f, "{s}")
    }
}

/// The Figure-1 transition function. Returns `None` for events that are not
/// defined in the given state (the site ignores them).
pub fn transition(phase: PartPhase, event: PartEvent) -> Option<(PartPhase, PartAction)> {
    use PartAction as A;
    use PartEvent as E;
    use PartPhase as P;
    match (phase, event) {
        (P::Idle, E::Begin) => Some((P::Compute, A::None)),
        (P::Compute, E::ComputeDone) => Some((P::Wait, A::SendReady)),
        (P::Compute, E::ComputeFailed) => Some((P::Idle, A::Discard)),
        (P::Compute, E::Abort) => Some((P::Idle, A::Discard)),
        (P::Wait, E::Complete) => Some((P::Idle, A::Install)),
        (P::Wait, E::Abort) => Some((P::Idle, A::Discard)),
        (P::Wait, E::Timeout) => Some((P::Idle, A::InstallPolyvalues)),
        _ => None,
    }
}

/// Every defined transition, for rendering Figure 1.
pub fn all_transitions() -> Vec<(PartPhase, PartEvent, PartPhase, PartAction)> {
    let phases = [PartPhase::Idle, PartPhase::Compute, PartPhase::Wait];
    let events = [
        PartEvent::Begin,
        PartEvent::ComputeDone,
        PartEvent::ComputeFailed,
        PartEvent::Complete,
        PartEvent::Abort,
        PartEvent::Timeout,
    ];
    let mut out = Vec::new();
    for p in phases {
        for e in events {
            if let Some((next, action)) = transition(p, e) {
                out.push((p, e, next, action));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use PartAction as A;
    use PartEvent as E;
    use PartPhase as P;

    #[test]
    fn happy_path_idle_compute_wait_idle() {
        let (p, a) = transition(P::Idle, E::Begin).unwrap();
        assert_eq!((p, a), (P::Compute, A::None));
        let (p, a) = transition(p, E::ComputeDone).unwrap();
        assert_eq!((p, a), (P::Wait, A::SendReady));
        let (p, a) = transition(p, E::Complete).unwrap();
        assert_eq!((p, a), (P::Idle, A::Install));
    }

    #[test]
    fn compute_failure_discards() {
        assert_eq!(
            transition(P::Compute, E::ComputeFailed),
            Some((P::Idle, A::Discard))
        );
        assert_eq!(
            transition(P::Compute, E::Abort),
            Some((P::Idle, A::Discard))
        );
    }

    #[test]
    fn wait_abort_discards() {
        assert_eq!(transition(P::Wait, E::Abort), Some((P::Idle, A::Discard)));
    }

    #[test]
    fn wait_timeout_installs_polyvalues() {
        // The edge that distinguishes the polyvalue protocol from blocking
        // 2PC: wait → idle on timeout, installing polyvalues.
        assert_eq!(
            transition(P::Wait, E::Timeout),
            Some((P::Idle, A::InstallPolyvalues))
        );
    }

    #[test]
    fn undefined_events_are_ignored() {
        assert_eq!(transition(P::Idle, E::Complete), None);
        assert_eq!(transition(P::Idle, E::Timeout), None);
        assert_eq!(transition(P::Wait, E::Begin), None);
        assert_eq!(transition(P::Compute, E::Complete), None);
        assert_eq!(transition(P::Compute, E::Timeout), None);
    }

    #[test]
    fn all_transitions_enumerates_the_figure() {
        let all = all_transitions();
        assert_eq!(all.len(), 7);
        // Every wait-state exit returns to idle (no site ever blocks).
        for (from, _, to, _) in &all {
            if *from == P::Wait {
                assert_eq!(*to, P::Idle);
            }
        }
    }

    #[test]
    fn displays_are_human_readable() {
        assert_eq!(P::Idle.to_string(), "idle");
        assert_eq!(P::Compute.to_string(), "compute");
        assert_eq!(P::Wait.to_string(), "wait");
        assert_eq!(E::Timeout.to_string(), "no message promptly");
        assert_eq!(A::InstallPolyvalues.to_string(), "install polyvalues");
        assert_eq!(A::None.to_string(), "-");
        assert_eq!(E::Begin.to_string(), "begin transaction");
        assert_eq!(E::ComputeDone.to_string(), "results computed promptly");
        assert_eq!(
            E::ComputeFailed.to_string(),
            "failure during compute / abort"
        );
        assert_eq!(E::Complete.to_string(), "complete received");
        assert_eq!(E::Abort.to_string(), "abort received");
        assert_eq!(A::SendReady.to_string(), "send ready");
        assert_eq!(A::Install.to_string(), "install results");
        assert_eq!(A::Discard.to_string(), "discard results");
    }
}
