//! Per-item lock table with no-wait conflict handling.
//!
//! Sites lock items while a transaction is between its read phase and its
//! outcome (strict two-phase locking). Conflicts are resolved *no-wait*: the
//! requester is refused and the coordinator aborts and the client retries
//! with backoff. Under the polyvalue protocol locks are released as soon as
//! the site installs in-doubt polyvalues — that early release is exactly the
//! availability the paper buys; the blocking baseline keeps them.

use pv_core::{ItemId, TxnId};
use std::collections::{BTreeMap, BTreeSet};

/// The lock state of one item.
#[derive(Debug, Clone, PartialEq, Eq)]
enum LockState {
    /// Shared by a set of readers.
    Read(BTreeSet<TxnId>),
    /// Held exclusively by one writer.
    Write(TxnId),
}

/// A site's lock table.
#[derive(Debug, Clone, Default)]
pub struct LockTable {
    locks: BTreeMap<ItemId, LockState>,
    held: BTreeMap<TxnId, BTreeSet<ItemId>>,
}

impl LockTable {
    /// An empty table.
    pub fn new() -> Self {
        LockTable::default()
    }

    /// Tries to acquire a shared lock; `false` on conflict (no-wait).
    /// Re-acquiring a lock the transaction already holds succeeds.
    pub fn try_read(&mut self, txn: TxnId, item: ItemId) -> bool {
        match self.locks.get_mut(&item) {
            None => {
                self.locks.insert(item, LockState::Read([txn].into()));
            }
            Some(LockState::Read(readers)) => {
                readers.insert(txn);
            }
            Some(LockState::Write(owner)) => {
                if *owner != txn {
                    return false;
                }
            }
        }
        self.held.entry(txn).or_default().insert(item);
        true
    }

    /// Tries to acquire an exclusive lock; `false` on conflict. A
    /// transaction that is the *sole* reader of the item upgrades in place.
    pub fn try_write(&mut self, txn: TxnId, item: ItemId) -> bool {
        match self.locks.get_mut(&item) {
            None => {
                self.locks.insert(item, LockState::Write(txn));
            }
            Some(LockState::Write(owner)) => {
                if *owner != txn {
                    return false;
                }
            }
            Some(state @ LockState::Read(_)) => {
                let LockState::Read(readers) = &*state else {
                    unreachable!()
                };
                if readers.len() == 1 && readers.contains(&txn) {
                    *state = LockState::Write(txn);
                } else {
                    return false;
                }
            }
        }
        self.held.entry(txn).or_default().insert(item);
        true
    }

    /// The transactions that would block `txn` from taking `item` in the
    /// given mode (empty = acquirable). Used by wound-wait to pick victims.
    pub fn conflicts(&self, txn: TxnId, item: ItemId, exclusive: bool) -> Vec<TxnId> {
        match self.locks.get(&item) {
            None => Vec::new(),
            Some(LockState::Write(owner)) => {
                if *owner == txn {
                    Vec::new()
                } else {
                    vec![*owner]
                }
            }
            Some(LockState::Read(readers)) => {
                if !exclusive {
                    return Vec::new();
                }
                readers.iter().copied().filter(|r| *r != txn).collect()
            }
        }
    }

    /// Releases every lock held by `txn`; returns the items released.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<ItemId> {
        let Some(items) = self.held.remove(&txn) else {
            return Vec::new();
        };
        for &item in &items {
            match self.locks.get_mut(&item) {
                Some(LockState::Write(owner)) if *owner == txn => {
                    self.locks.remove(&item);
                }
                Some(LockState::Read(readers)) => {
                    readers.remove(&txn);
                    if readers.is_empty() {
                        self.locks.remove(&item);
                    }
                }
                _ => {}
            }
        }
        items.into_iter().collect()
    }

    /// Whether `txn` holds any lock.
    pub fn holds_any(&self, txn: TxnId) -> bool {
        self.held.get(&txn).is_some_and(|s| !s.is_empty())
    }

    /// Whether `item` is locked at all.
    pub fn is_locked(&self, item: ItemId) -> bool {
        self.locks.contains_key(&item)
    }

    /// Number of currently locked items.
    pub fn locked_count(&self) -> usize {
        self.locks.len()
    }

    /// Drops every lock (volatile state lost in a crash).
    pub fn clear(&mut self) {
        self.locks.clear();
        self.held.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> TxnId {
        TxnId(n)
    }

    fn i(n: u64) -> ItemId {
        ItemId(n)
    }

    #[test]
    fn shared_reads_coexist() {
        let mut l = LockTable::new();
        assert!(l.try_read(t(1), i(1)));
        assert!(l.try_read(t(2), i(1)));
        assert!(l.is_locked(i(1)));
        assert_eq!(l.locked_count(), 1);
    }

    #[test]
    fn write_excludes_everyone_else() {
        let mut l = LockTable::new();
        assert!(l.try_write(t(1), i(1)));
        assert!(!l.try_write(t(2), i(1)));
        assert!(!l.try_read(t(2), i(1)));
        // The owner can re-enter both ways.
        assert!(l.try_write(t(1), i(1)));
        assert!(l.try_read(t(1), i(1)));
    }

    #[test]
    fn read_blocks_write_from_others() {
        let mut l = LockTable::new();
        assert!(l.try_read(t(1), i(1)));
        assert!(!l.try_write(t(2), i(1)));
    }

    #[test]
    fn sole_reader_upgrades() {
        let mut l = LockTable::new();
        assert!(l.try_read(t(1), i(1)));
        assert!(l.try_write(t(1), i(1)));
        assert!(!l.try_read(t(2), i(1)), "upgraded lock must be exclusive");
    }

    #[test]
    fn shared_readers_cannot_upgrade() {
        let mut l = LockTable::new();
        assert!(l.try_read(t(1), i(1)));
        assert!(l.try_read(t(2), i(1)));
        assert!(!l.try_write(t(1), i(1)));
    }

    #[test]
    fn release_frees_items() {
        let mut l = LockTable::new();
        assert!(l.try_write(t(1), i(1)));
        assert!(l.try_read(t(1), i(2)));
        assert!(l.try_read(t(2), i(2)));
        assert!(l.holds_any(t(1)));
        let released = l.release_all(t(1));
        assert_eq!(released, vec![i(1), i(2)]);
        assert!(!l.holds_any(t(1)));
        // Item 1 is free; item 2 still read-locked by t2.
        assert!(l.try_write(t(3), i(1)));
        assert!(!l.try_write(t(3), i(2)));
        assert!(l.try_read(t(3), i(2)));
    }

    #[test]
    fn release_unknown_txn_is_empty() {
        let mut l = LockTable::new();
        assert!(l.release_all(t(9)).is_empty());
    }

    #[test]
    fn clear_drops_everything() {
        let mut l = LockTable::new();
        l.try_write(t(1), i(1));
        l.try_read(t(2), i(2));
        l.clear();
        assert_eq!(l.locked_count(), 0);
        assert!(!l.holds_any(t(1)));
        assert!(l.try_write(t(3), i(1)));
    }

    #[test]
    fn conflicts_lists_blockers() {
        let mut l = LockTable::new();
        assert!(l.conflicts(t(9), i(1), true).is_empty());
        l.try_write(t(1), i(1));
        assert_eq!(l.conflicts(t(9), i(1), false), vec![t(1)]);
        assert!(
            l.conflicts(t(1), i(1), true).is_empty(),
            "owner never self-conflicts"
        );
        l.try_read(t(2), i(2));
        l.try_read(t(3), i(2));
        assert!(
            l.conflicts(t(9), i(2), false).is_empty(),
            "shared read is fine"
        );
        assert_eq!(l.conflicts(t(9), i(2), true), vec![t(2), t(3)]);
        assert_eq!(l.conflicts(t(2), i(2), true), vec![t(3)]);
    }

    #[test]
    fn release_then_reacquire_cycle() {
        let mut l = LockTable::new();
        for round in 0..3 {
            assert!(l.try_write(t(round), i(1)), "round {round}");
            l.release_all(t(round));
        }
        assert_eq!(l.locked_count(), 0);
    }
}
