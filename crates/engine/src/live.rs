//! A live, thread-backed deployment of the engine.
//!
//! The simulated world is where the paper's experiments run, but the same
//! [`Site`] logic also deploys onto real threads: one OS thread per site,
//! crossbeam channels as the network, a timer wheel per thread, and wall
//! clock time. This is possible because sites are *sans-io* actors — every
//! side effect goes through the [`pv_simnet::Ctx`] effect interface, which
//! this module drives externally via [`pv_simnet::Ctx::external`].
//!
//! The live runtime supports crash/recover injection (the thread drops its
//! volatile state and replays the WAL, exactly like the simulation) and
//! shared metrics behind a `parking_lot` mutex.

use crate::config::EngineConfig;
use crate::directory::Directory;
use crate::error::EngineError;
use crate::messages::{Msg, TxnResult};
use crate::site::Site;
use crate::topology::Topology;
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use pv_core::{ItemId, Value};
use pv_simnet::{Actor, Ctx, Effect, Metrics, NodeId, SimRng, SimTime, Trace, TraceRecord, TraceSink};
use pv_store::{DiskWal, FsyncPolicy, SiteId, SiteStore};
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The shared registry of client reply channels, keyed by client node id.
type ClientRegistry = Arc<Mutex<BTreeMap<u32, Sender<(u64, TxnResult)>>>>;

/// Shared fault state of the live network: cut site pairs and a loss
/// probability applied to every site-to-site send. Mirrors the simulation's
/// [`pv_simnet::NetConfig`] knobs, but mutable at runtime.
#[derive(Debug, Default)]
struct LiveLinks {
    blocked: BTreeSet<(u32, u32)>,
    drop_prob: f64,
}

impl LiveLinks {
    /// Normalises a pair so `(a, b)` and `(b, a)` are the same link.
    fn key(a: u32, b: u32) -> (u32, u32) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }
}

/// What flows over a site thread's inbox.
enum Envelope {
    /// A protocol message from another node.
    Deliver { from: NodeId, msg: Msg },
    /// Crash the site: volatile state is dropped, the WAL survives.
    Crash,
    /// Recover the site.
    Recover,
    /// Reply with a state snapshot.
    Inspect(Sender<SiteSnapshot>),
    /// Serve a coordination-free MVCC snapshot read and reply on the
    /// channel with `(snapshot, entries)`.
    SnapshotRead {
        /// Items to read; empty = every item the site holds.
        items: Vec<ItemId>,
        /// Where the `(snapshot, entries)` answer goes.
        reply: Sender<pv_store::SnapshotView>,
    },
    /// Shut the thread down.
    Stop,
}

/// A point-in-time view of one live site.
#[derive(Debug, Clone)]
pub struct SiteSnapshot {
    /// The site's id.
    pub site: SiteId,
    /// Whether it is currently up.
    pub up: bool,
    /// Items currently holding polyvalues.
    pub poly_count: usize,
    /// Entries of every item the site holds.
    pub items: Vec<(ItemId, pv_core::Entry<Value>)>,
    /// Whether any protocol state is still in flight.
    pub quiescent: bool,
}

/// One pending timer in a site thread's wheel.
struct PendingTimer {
    due: Instant,
    id: u64,
    key: u64,
}

impl PartialEq for PendingTimer {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.id == other.id
    }
}
impl Eq for PendingTimer {}
impl PartialOrd for PendingTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed so the heap pops the earliest timer.
        other.due.cmp(&self.due).then(other.id.cmp(&self.id))
    }
}

/// The per-thread driver translating [`Effect`]s into channels and timers.
struct SiteThread {
    site: Site,
    me: NodeId,
    inbox: Receiver<Envelope>,
    peers: Vec<Sender<Envelope>>,
    clients: ClientRegistry,
    metrics: Arc<Mutex<Metrics>>,
    trace: Arc<Mutex<Trace>>,
    links: Arc<Mutex<LiveLinks>>,
    rng: SimRng,
    next_timer_id: u64,
    timers: BinaryHeap<PendingTimer>,
    cancelled: BTreeSet<u64>,
    epoch: Instant,
    up: bool,
    /// Whether the site opened a non-empty durable image and must replay
    /// recovery (epoch bump, lock re-acquisition) before serving traffic.
    recovered: bool,
}

impl SiteThread {
    fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_micros() as u64)
    }

    /// Runs one actor callback and applies its effects.
    fn callback(&mut self, f: impl FnOnce(&mut Site, &mut Ctx<Msg>)) {
        let mut metrics = self.metrics.lock();
        let mut trace = self.trace.lock();
        let mut ctx = Ctx::external(
            self.now(),
            self.me,
            &mut self.rng,
            &mut metrics,
            &mut trace,
            &mut self.next_timer_id,
        );
        f(&mut self.site, &mut ctx);
        let effects = ctx.drain_effects();
        drop(trace);
        drop(metrics);
        let now = self.now();
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => {
                    // Replies route to client channels; everything else to
                    // site inboxes. A send to a missing peer is dropped,
                    // like a datagram.
                    if let Msg::Reply { req_id, result } = msg {
                        if let Some(tx) = self.clients.lock().get(&to.0) {
                            let _ = tx.send((req_id, result));
                        }
                        continue;
                    }
                    // Injected network faults apply to site-to-site links
                    // only (client replies above stay reliable, like the
                    // simulation's loopback).
                    if to != self.me {
                        let (blocked, drop_prob) = {
                            let links = self.links.lock();
                            (
                                links.blocked.contains(&LiveLinks::key(self.me.0, to.0)),
                                links.drop_prob,
                            )
                        };
                        if blocked {
                            self.metrics.lock().inc("live.dropped_partition");
                            continue;
                        }
                        if drop_prob > 0.0 && self.rng.chance(drop_prob) {
                            self.metrics.lock().inc("live.dropped_loss");
                            continue;
                        }
                    }
                    if let Some(peer) = self.peers.get(to.0 as usize) {
                        let _ = peer.send(Envelope::Deliver { from: self.me, msg });
                    }
                }
                Effect::SetTimer { id, key, at } => {
                    let delay =
                        Duration::from_micros(at.as_micros().saturating_sub(now.as_micros()));
                    self.timers.push(PendingTimer {
                        due: Instant::now() + delay,
                        id,
                        key,
                    });
                }
                Effect::CancelTimer(id) => {
                    self.cancelled.insert(id);
                }
            }
        }
    }

    fn run(mut self) -> Site {
        // A site rebuilt from a non-empty durable image replays recovery
        // before touching any traffic: epoch bump, write-lock re-acquisition
        // for staged transactions, and the inquiry timer.
        if self.recovered {
            self.callback(|site, ctx| site.on_recover(ctx));
            self.metrics.lock().inc("live.cold_recoveries");
        }
        loop {
            // Fire due timers (only while up; a crash voids the wheel).
            while self.up {
                match self.timers.peek() {
                    Some(t) if t.due <= Instant::now() => {
                        let t = self.timers.pop().expect("peeked");
                        if self.cancelled.remove(&t.id) {
                            continue;
                        }
                        let key = t.key;
                        self.callback(|site, ctx| site.on_timer(ctx, key));
                    }
                    _ => break,
                }
            }
            let wait = self
                .timers
                .peek()
                .filter(|_| self.up)
                .map(|t| t.due.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_millis(50));
            match self.inbox.recv_timeout(wait) {
                Ok(Envelope::Deliver { from, msg }) => {
                    if self.up {
                        self.callback(|site, ctx| site.on_message(ctx, from, msg));
                    }
                    // A crashed site drops traffic on the floor.
                }
                Ok(Envelope::Crash) => {
                    if self.up {
                        self.up = false;
                        self.timers.clear();
                        self.cancelled.clear();
                        self.site.on_crash();
                        self.metrics.lock().inc("live.crashes");
                    }
                }
                Ok(Envelope::Recover) => {
                    if !self.up {
                        self.up = true;
                        self.callback(|site, ctx| site.on_recover(ctx));
                        self.metrics.lock().inc("live.recoveries");
                    }
                }
                Ok(Envelope::Inspect(reply)) => {
                    let snapshot = SiteSnapshot {
                        site: self.site.id(),
                        up: self.up,
                        poly_count: self.site.poly_count(),
                        items: self
                            .site
                            .store()
                            .iter_items()
                            .map(|(i, e)| (i, e.clone()))
                            .collect(),
                        quiescent: self.site.is_quiescent(),
                    };
                    let _ = reply.send(snapshot);
                }
                Ok(Envelope::SnapshotRead { items, reply }) => {
                    // A crashed site drops the request; the caller times out.
                    if self.up {
                        let mut out = None;
                        self.callback(|site, ctx| out = Some(site.snapshot_read(ctx, &items)));
                        let _ = reply.send(out.expect("callback ran"));
                    }
                }
                Ok(Envelope::Stop) => {
                    self.site.sync_store();
                    return self.site;
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    self.site.sync_store();
                    return self.site;
                }
            }
        }
    }
}

/// Configures and starts a [`LiveCluster`].
///
/// The cluster shape lives in a [`Topology`] — the configuration type shared
/// with the simulation and the `pv-net` socket runtime — so the preferred
/// entry point is [`LiveCluster::from_topology`]. This builder remains for
/// what only the live runtime has (streaming trace sinks) and as the
/// [`LiveCluster::builder`] compatibility surface; its duplicate
/// configuration setters are deprecated in favour of the topology's.
pub struct LiveBuilder {
    topo: Topology,
    trace: Option<Trace>,
}

impl LiveBuilder {
    /// Starts a builder over an existing cluster description.
    pub fn from_topology(topo: Topology) -> Self {
        LiveBuilder { topo, trace: None }
    }

    /// Sets the engine configuration.
    #[deprecated(
        since = "0.1.0",
        note = "set it on the shared configuration: `Topology::engine` \
                (then `LiveCluster::from_topology`)"
    )]
    pub fn engine(mut self, config: impl Into<EngineConfig>) -> Self {
        self.topo = self.topo.engine(config);
        self
    }

    /// Seeds an initial item value (placed by the directory).
    #[deprecated(
        since = "0.1.0",
        note = "set it on the shared configuration: `Topology::item` \
                (then `LiveCluster::from_topology`)"
    )]
    pub fn item(mut self, item: impl Into<ItemId>, value: impl Into<Value>) -> Self {
        self.topo = self.topo.item(item, value);
        self
    }

    /// Seeds many items at once.
    #[deprecated(
        since = "0.1.0",
        note = "set it on the shared configuration: `Topology::items` \
                (then `LiveCluster::from_topology`)"
    )]
    pub fn items(mut self, items: impl IntoIterator<Item = (ItemId, Value)>) -> Self {
        self.topo = self.topo.items(items);
        self
    }

    /// Turns on the static submit gate.
    #[deprecated(
        since = "0.1.0",
        note = "set it on the shared configuration: `Topology::static_checks` \
                (then `LiveCluster::from_topology`)"
    )]
    pub fn static_checks(mut self) -> Self {
        self.topo.engine.static_checks = true;
        self
    }

    /// Persists each site's WAL under `<dir>/site-<s>`.
    #[deprecated(
        since = "0.1.0",
        note = "set it on the shared configuration: `Topology::data_dir` \
                (then `LiveCluster::from_topology`)"
    )]
    pub fn data_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.topo = self.topo.data_dir(dir);
        self
    }

    /// Sets the fsync policy of disk-backed sites.
    #[deprecated(
        since = "0.1.0",
        note = "set it on the shared configuration: `Topology::fsync_policy` \
                (then `LiveCluster::from_topology`)"
    )]
    pub fn fsync_policy(mut self, policy: FsyncPolicy) -> Self {
        self.topo = self.topo.fsync_policy(policy);
        self
    }

    /// Buffers a full protocol trace, readable via
    /// [`LiveCluster::trace_text`] / [`LiveCluster::trace_records`]. Live
    /// traces are timestamped with wall-clock microseconds since cluster
    /// start, so unlike simulation traces they are not run-to-run identical.
    pub fn collect_trace(mut self) -> Self {
        self.trace = Some(Trace::collecting());
        self
    }

    /// Buffers a protocol trace and streams each record to `sink`. Sinks
    /// are live callbacks, so they stay builder-level rather than moving
    /// into the (clonable, runtime-agnostic) [`Topology`].
    pub fn trace(mut self, sink: impl TraceSink + Send + 'static) -> Self {
        self.trace = Some(Trace::with_sink(sink));
        self
    }

    /// Spawns the site threads and returns the running cluster.
    ///
    /// # Panics
    ///
    /// Panics when a site's WAL directory cannot be opened; use
    /// [`LiveBuilder::try_start`] (or [`LiveCluster::from_topology`]) to
    /// get the error instead.
    pub fn start(self) -> LiveCluster {
        self.try_start().expect("start live cluster")
    }

    /// Spawns the site threads, reporting WAL-directory failures as
    /// [`EngineError::Io`] instead of panicking.
    pub fn try_start(self) -> Result<LiveCluster, EngineError> {
        let trace = match self.trace {
            Some(trace) => trace,
            None if self.topo.collect_trace => Trace::collecting(),
            None => Trace::default(),
        };
        LiveCluster::spawn(
            self.topo.sites,
            self.topo.directory,
            self.topo.engine,
            self.topo.items,
            trace,
            self.topo.data_dir,
            self.topo.fsync_policy,
        )
    }
}

/// A running thread-per-site deployment of the engine.
///
/// # Examples
///
/// ```
/// use pv_core::{Expr, ItemId, TransactionSpec, Value};
/// use pv_engine::live::LiveCluster;
/// use pv_engine::{Directory, Topology};
/// use std::time::Duration;
///
/// let topo = Topology::new(2, Directory::Mod(2))
///     .item(ItemId(0), Value::Int(100))
///     .item(ItemId(1), Value::Int(0));
/// let cluster = LiveCluster::from_topology(topo).unwrap();
/// let transfer = TransactionSpec::new()
///     .guard(Expr::read(ItemId(0)).ge(Expr::int(40)))
///     .update(ItemId(0), Expr::read(ItemId(0)).sub(Expr::int(40)))
///     .update(ItemId(1), Expr::read(ItemId(1)).add(Expr::int(40)));
/// let result = cluster.submit(0, &transfer, Duration::from_secs(5)).unwrap();
/// assert!(result.is_committed());
/// cluster.shutdown();
/// ```
pub struct LiveCluster {
    senders: Vec<Sender<Envelope>>,
    handles: Vec<std::thread::JoinHandle<Site>>,
    clients: ClientRegistry,
    metrics: Arc<Mutex<Metrics>>,
    trace: Arc<Mutex<Trace>>,
    links: Arc<Mutex<LiveLinks>>,
    client_rx: Receiver<(u64, TxnResult)>,
    client_node: u32,
    next_req: Mutex<u64>,
    static_checks: bool,
}

impl LiveCluster {
    /// Starts configuring a live cluster of `sites` site threads.
    pub fn builder(sites: u32, directory: Directory) -> LiveBuilder {
        LiveBuilder::from_topology(Topology::new(sites, directory))
    }

    /// Spawns a live cluster described by a runtime-agnostic [`Topology`] —
    /// the same value [`crate::ClusterBuilder::from_topology`] and
    /// `pv_net::NetBuilder::from_topology` accept. Fails with
    /// [`EngineError::Io`] when a site's WAL directory cannot be opened.
    pub fn from_topology(topo: Topology) -> Result<Self, EngineError> {
        LiveBuilder::from_topology(topo).try_start()
    }

    fn spawn(
        sites: u32,
        directory: Directory,
        config: EngineConfig,
        items: Vec<(ItemId, Value)>,
        trace: Trace,
        data_dir: Option<PathBuf>,
        fsync_policy: FsyncPolicy,
    ) -> Result<Self, EngineError> {
        assert!(sites > 0);
        let static_checks = config.static_checks;
        let metrics = Arc::new(Mutex::new(Metrics::new()));
        let trace = Arc::new(Mutex::new(trace));
        let clients = Arc::new(Mutex::new(BTreeMap::new()));
        let links = Arc::new(Mutex::new(LiveLinks::default()));
        let epoch = Instant::now();
        let mut senders = Vec::with_capacity(sites as usize);
        let mut inboxes = Vec::with_capacity(sites as usize);
        for _ in 0..sites {
            let (tx, rx) = channel::unbounded();
            senders.push(tx);
            inboxes.push(rx);
        }
        let mut handles = Vec::with_capacity(sites as usize);
        for (s, inbox) in inboxes.into_iter().enumerate() {
            let store = match &data_dir {
                Some(dir) => {
                    let path = dir.join(format!("site-{s}"));
                    let wal = DiskWal::open(&path, fsync_policy).map_err(|e| {
                        EngineError::Io(format!("open WAL at {}: {e}", path.display()))
                    })?;
                    let mut store = SiteStore::open(Box::new(wal));
                    // Mirror keyspace runs beside the WAL (derived state;
                    // the WAL stays the authoritative log).
                    store.attach_keyspace_dir(&path);
                    store
                }
                None => SiteStore::new(),
            };
            let recovered = !store.wal().is_empty();
            let mut site =
                Site::with_store(s as SiteId, config.clone(), directory.clone(), store);
            site.enable_wall_clock_metrics();
            for (item, value) in &items {
                if directory.site_of(*item) == Some(s as SiteId)
                    && !site.store().contains(*item)
                {
                    site.seed_item(*item, value.clone());
                }
            }
            // Initial population is durable before the site serves traffic.
            site.sync_store();
            let thread = SiteThread {
                site,
                me: NodeId(s as u32),
                inbox,
                peers: senders.clone(),
                clients: Arc::clone(&clients),
                metrics: Arc::clone(&metrics),
                trace: Arc::clone(&trace),
                links: Arc::clone(&links),
                rng: SimRng::new(0xC0FFEE + s as u64),
                next_timer_id: 0,
                timers: BinaryHeap::new(),
                cancelled: BTreeSet::new(),
                epoch,
                up: true,
                recovered,
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("pv-site-{s}"))
                    .spawn(move || thread.run())
                    .expect("spawn site thread"),
            );
        }
        // Register one client channel, addressed as node `sites`.
        let client_node = sites;
        let (ctx_tx, client_rx) = channel::unbounded();
        clients.lock().insert(client_node, ctx_tx);
        Ok(LiveCluster {
            senders,
            handles,
            clients,
            metrics,
            trace,
            links,
            client_rx,
            client_node,
            next_req: Mutex::new(1),
            static_checks,
        })
    }

    /// Submits a transaction to `coordinator` and blocks for the result.
    pub fn submit(
        &self,
        coordinator: SiteId,
        spec: &pv_core::TransactionSpec,
        deadline: Duration,
    ) -> Result<TxnResult, EngineError> {
        if self.static_checks {
            if let Err(report) = pv_analysis::gate_spec(spec) {
                return Err(EngineError::Rejected(report));
            }
        }
        let req_id = {
            let mut next = self.next_req.lock();
            let id = *next;
            *next += 1;
            id
        };
        self.sender(coordinator)?
            .send(Envelope::Deliver {
                from: NodeId(self.client_node),
                msg: Msg::Submit {
                    req_id,
                    spec: spec.clone(),
                },
            })
            .map_err(|_| EngineError::Disconnected)?;
        let limit = Instant::now() + deadline;
        loop {
            let remaining = limit.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(EngineError::Timeout);
            }
            match self.client_rx.recv_timeout(remaining) {
                Ok((id, result)) if id == req_id => return Ok(result),
                Ok(_) => continue, // stale reply from an abandoned request
                Err(RecvTimeoutError::Timeout) => return Err(EngineError::Timeout),
                Err(RecvTimeoutError::Disconnected) => return Err(EngineError::Disconnected),
            }
        }
    }

    fn sender(&self, site: SiteId) -> Result<&Sender<Envelope>, EngineError> {
        self.senders
            .get(site as usize)
            .ok_or(EngineError::UnknownSite(site))
    }

    /// Crashes a site (volatile state lost; the WAL survives).
    pub fn crash(&self, site: SiteId) -> Result<(), EngineError> {
        let _ = self.sender(site)?.send(Envelope::Crash);
        Ok(())
    }

    /// Recovers a crashed site.
    pub fn recover(&self, site: SiteId) -> Result<(), EngineError> {
        let _ = self.sender(site)?.send(Envelope::Recover);
        Ok(())
    }

    /// Cuts the link between sites `a` and `b` (both directions): every
    /// message either sends to the other is silently dropped until healed.
    pub fn partition(&self, a: SiteId, b: SiteId) -> Result<(), EngineError> {
        self.check_site(a)?;
        self.check_site(b)?;
        self.links.lock().blocked.insert(LiveLinks::key(a, b));
        Ok(())
    }

    /// Heals a previously cut link.
    pub fn heal(&self, a: SiteId, b: SiteId) -> Result<(), EngineError> {
        self.check_site(a)?;
        self.check_site(b)?;
        self.links.lock().blocked.remove(&LiveLinks::key(a, b));
        Ok(())
    }

    /// Sets the probability that any site-to-site message is lost in
    /// transit, mirroring the simulation's `NetConfig::drop_prob`.
    pub fn set_drop_prob(&self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.links.lock().drop_prob = p;
    }

    fn check_site(&self, site: SiteId) -> Result<(), EngineError> {
        self.sender(site).map(|_| ())
    }

    /// Snapshots a site's state.
    pub fn inspect(&self, site: SiteId, deadline: Duration) -> Result<SiteSnapshot, EngineError> {
        let (tx, rx) = channel::bounded(1);
        self.sender(site)?
            .send(Envelope::Inspect(tx))
            .map_err(|_| EngineError::Disconnected)?;
        rx.recv_timeout(deadline).map_err(|e| match e {
            RecvTimeoutError::Timeout => EngineError::Timeout,
            RecvTimeoutError::Disconnected => EngineError::Disconnected,
        })
    }

    /// Serves a coordination-free read-only transaction at `site`: the site
    /// thread pins an MVCC snapshot, reads `items` (all its items when the
    /// list is empty), and answers `(snapshot, entries)` without touching
    /// its lock table or sending any protocol message.
    pub fn snapshot_read(
        &self,
        site: SiteId,
        items: &[ItemId],
        deadline: Duration,
    ) -> Result<pv_store::SnapshotView, EngineError> {
        let (tx, rx) = channel::bounded(1);
        self.sender(site)?
            .send(Envelope::SnapshotRead {
                items: items.to_vec(),
                reply: tx,
            })
            .map_err(|_| EngineError::Disconnected)?;
        rx.recv_timeout(deadline).map_err(|e| match e {
            RecvTimeoutError::Timeout => EngineError::Timeout,
            RecvTimeoutError::Disconnected => EngineError::Disconnected,
        })
    }

    /// Total polyvalued items across live sites.
    pub fn total_poly_count(&self, deadline: Duration) -> Result<usize, EngineError> {
        let mut total = 0;
        for s in 0..self.senders.len() {
            total += self.inspect(s as SiteId, deadline)?.poly_count;
        }
        Ok(total)
    }

    /// A copy of the shared metrics registry.
    pub fn metrics(&self) -> Metrics {
        self.metrics.lock().clone()
    }

    /// The buffered trace records so far (empty unless the builder enabled
    /// tracing).
    pub fn trace_records(&self) -> Vec<TraceRecord> {
        self.trace.lock().records().to_vec()
    }

    /// The buffered trace in the stable line format.
    pub fn trace_text(&self) -> String {
        self.trace.lock().to_text()
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.senders.len()
    }

    /// Stops every site thread and returns the final [`Site`] states.
    pub fn shutdown(self) -> Vec<Site> {
        for tx in &self.senders {
            let _ = tx.send(Envelope::Stop);
        }
        self.clients.lock().clear();
        self.handles
            .into_iter()
            .map(|h| h.join().expect("site thread panicked"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CommitProtocol;
    use pv_core::{Entry, Expr, TransactionSpec};
    use pv_simnet::SimDuration;

    fn fast_config() -> EngineConfig {
        EngineConfig {
            read_timeout: SimDuration::from_millis(200),
            ready_timeout: SimDuration::from_millis(200),
            wait_timeout: SimDuration::from_millis(80),
            read_lease: SimDuration::from_millis(500),
            inquire_interval: SimDuration::from_millis(100),
            ..EngineConfig::with_protocol(CommitProtocol::Polyvalue)
        }
    }

    fn transfer(from: u64, to: u64, amount: i64) -> TransactionSpec {
        let (f, t) = (ItemId(from), ItemId(to));
        TransactionSpec::new()
            .guard(Expr::read(f).ge(Expr::int(amount)))
            .update(f, Expr::read(f).sub(Expr::int(amount)))
            .update(t, Expr::read(t).add(Expr::int(amount)))
    }

    fn two_site_topo() -> Topology {
        Topology::new(2, Directory::Mod(2))
            .engine(fast_config())
            .items(vec![(ItemId(0), Value::Int(100)), (ItemId(1), Value::Int(100))])
    }

    fn two_site_cluster() -> LiveCluster {
        LiveCluster::from_topology(two_site_topo()).unwrap()
    }

    #[test]
    fn live_transfer_commits() {
        let cluster = two_site_cluster();
        let result = cluster
            .submit(0, &transfer(0, 1, 30), Duration::from_secs(5))
            .unwrap();
        assert!(result.is_committed());
        let s0 = cluster.inspect(0, Duration::from_secs(1)).unwrap();
        let s1 = cluster.inspect(1, Duration::from_secs(1)).unwrap();
        assert_eq!(s0.items[0].1, Entry::Simple(Value::Int(70)));
        assert_eq!(s1.items[0].1, Entry::Simple(Value::Int(130)));
        assert!(s0.up && s1.up);
        cluster.shutdown();
    }

    #[test]
    fn live_denied_transfer_changes_nothing() {
        let cluster = two_site_cluster();
        let result = cluster
            .submit(0, &transfer(0, 1, 500), Duration::from_secs(5))
            .unwrap();
        assert!(result.is_committed());
        assert!(!result.fully_granted());
        let s0 = cluster.inspect(0, Duration::from_secs(1)).unwrap();
        assert_eq!(s0.items[0].1, Entry::Simple(Value::Int(100)));
        cluster.shutdown();
    }

    #[test]
    fn live_crash_recover_preserves_data() {
        let cluster = two_site_cluster();
        cluster
            .submit(0, &transfer(0, 1, 10), Duration::from_secs(5))
            .unwrap();
        cluster.crash(1).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let down = cluster.inspect(1, Duration::from_secs(1)).unwrap();
        assert!(!down.up);
        cluster.recover(1).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let up = cluster.inspect(1, Duration::from_secs(1)).unwrap();
        assert!(up.up);
        assert_eq!(up.items[0].1, Entry::Simple(Value::Int(110)), "WAL replay");
        cluster.shutdown();
    }

    #[test]
    fn live_transaction_during_crash_times_out_or_aborts() {
        let cluster = two_site_cluster();
        cluster.crash(1).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        // Coordinator 0 cannot reach site 1: the attempt must not hang
        // forever and must not commit.
        let result = cluster.submit(0, &transfer(0, 1, 10), Duration::from_secs(3));
        match result {
            Ok(r) => assert!(!r.is_committed()),
            Err(EngineError::Timeout) => {}
            Err(other) => panic!("unexpected {other:?}"),
        }
        cluster.recover(1).unwrap();
        // After recovery the system settles with no residual uncertainty.
        std::thread::sleep(Duration::from_millis(400));
        assert_eq!(cluster.total_poly_count(Duration::from_secs(1)).unwrap(), 0);
        // And money is intact.
        let s0 = cluster.inspect(0, Duration::from_secs(1)).unwrap();
        let s1 = cluster.inspect(1, Duration::from_secs(1)).unwrap();
        let total = [&s0, &s1]
            .iter()
            .flat_map(|s| s.items.iter())
            .map(|(_, e)| e.as_simple().and_then(Value::as_int).expect("settled"))
            .sum::<i64>();
        assert_eq!(total, 200);
        cluster.shutdown();
    }

    #[test]
    fn live_unknown_site_is_an_error_not_a_panic() {
        let cluster = two_site_cluster();
        assert_eq!(cluster.crash(9).err(), Some(EngineError::UnknownSite(9)));
        assert_eq!(cluster.recover(9).err(), Some(EngineError::UnknownSite(9)));
        let submitted = cluster.submit(9, &transfer(0, 1, 1), Duration::from_secs(1));
        assert_eq!(submitted.err(), Some(EngineError::UnknownSite(9)));
        assert_eq!(
            cluster.inspect(9, Duration::from_secs(1)).err(),
            Some(EngineError::UnknownSite(9))
        );
        cluster.shutdown();
    }

    #[test]
    fn live_trace_records_protocol_transitions() {
        let topo = Topology::new(2, Directory::Mod(2))
            .engine(fast_config())
            .item(0u64, 100i64)
            .item(1u64, 100i64);
        let cluster = LiveBuilder::from_topology(topo).collect_trace().start();
        let result = cluster
            .submit(0, &transfer(0, 1, 30), Duration::from_secs(5))
            .unwrap();
        assert!(result.is_committed());
        let text = cluster.trace_text();
        assert!(text.contains("prepared"), "trace:\n{text}");
        assert!(text.contains("decided"), "trace:\n{text}");
        assert_eq!(text.lines().count(), cluster.trace_records().len());
        cluster.shutdown();
    }

    #[test]
    fn live_static_checks_reject_before_submission() {
        let cluster = LiveCluster::from_topology(two_site_topo().static_checks()).unwrap();
        // An ill-typed spec never reaches a site.
        let bad = TransactionSpec::new().update(ItemId(0), Expr::int(1).add(Expr::bool(true)));
        match cluster.submit(0, &bad, Duration::from_secs(5)) {
            Err(EngineError::Rejected(report)) => {
                assert!(report.contains("PV001"), "report: {report}")
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        // A well-typed spec still commits.
        let result = cluster
            .submit(0, &transfer(0, 1, 30), Duration::from_secs(5))
            .unwrap();
        assert!(result.is_committed());
        cluster.shutdown();
    }

    /// A scratch directory under the workspace `target/` (tests must not
    /// write outside the repository), wiped before use.
    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp/live-tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Polls `f` until it holds or `deadline` passes; returns the final
    /// verdict.
    fn wait_until(deadline: Duration, mut f: impl FnMut() -> bool) -> bool {
        let limit = Instant::now() + deadline;
        while Instant::now() < limit {
            if f() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        f()
    }

    fn live_total(cluster: &LiveCluster) -> i64 {
        (0..cluster.site_count())
            .map(|s| {
                cluster
                    .inspect(s as SiteId, Duration::from_secs(1))
                    .unwrap()
                    .items
                    .iter()
                    .map(|(_, e)| e.as_simple().and_then(Value::as_int).expect("settled"))
                    .sum::<i64>()
            })
            .sum()
    }

    #[test]
    fn live_partition_blocks_and_heal_restores() {
        let cluster = two_site_cluster();
        cluster.partition(0, 1).unwrap();
        // The coordinator cannot reach site 1: the transfer must fail
        // without hanging, and must not half-apply.
        match cluster.submit(0, &transfer(0, 1, 10), Duration::from_secs(3)) {
            Ok(r) => assert!(!r.is_committed()),
            Err(EngineError::Timeout) => {}
            Err(other) => panic!("unexpected {other:?}"),
        }
        assert!(cluster.metrics().counter("live.dropped_partition") > 0);
        cluster.heal(0, 1).unwrap();
        let result = cluster
            .submit(0, &transfer(0, 1, 10), Duration::from_secs(5))
            .unwrap();
        assert!(result.is_committed());
        assert!(wait_until(Duration::from_secs(5), || {
            cluster.total_poly_count(Duration::from_secs(1)).unwrap() == 0
        }));
        assert_eq!(live_total(&cluster), 200, "conservation across partition");
        cluster.shutdown();
    }

    #[test]
    fn live_partition_rejects_unknown_sites() {
        let cluster = two_site_cluster();
        assert_eq!(
            cluster.partition(0, 9).err(),
            Some(EngineError::UnknownSite(9))
        );
        assert_eq!(cluster.heal(9, 0).err(), Some(EngineError::UnknownSite(9)));
        cluster.shutdown();
    }

    #[test]
    fn live_lossy_links_converge_after_reset() {
        let cluster = two_site_cluster();
        cluster.set_drop_prob(0.25);
        // Many submissions fail under 25 % loss; whatever commits must stay
        // atomic once the loss stops and inquiries settle the rest.
        for k in 0..8 {
            let _ = cluster.submit(0, &transfer(k % 2, (k + 1) % 2, 5), Duration::from_secs(2));
        }
        assert!(cluster.metrics().counter("live.dropped_loss") > 0);
        cluster.set_drop_prob(0.0);
        assert!(
            wait_until(Duration::from_secs(10), || {
                cluster.total_poly_count(Duration::from_secs(1)).unwrap() == 0
                    && (0..2).all(|s| {
                        cluster.inspect(s, Duration::from_secs(1)).unwrap().quiescent
                    })
            }),
            "uncertainty must drain once the network is clean"
        );
        assert_eq!(live_total(&cluster), 200, "conservation under loss");
        cluster.shutdown();
    }

    #[test]
    fn live_disk_backed_cluster_survives_restart() {
        let dir = scratch("restart");
        let build = || LiveCluster::from_topology(two_site_topo().data_dir(&dir)).unwrap();
        let first = build();
        let result = first
            .submit(0, &transfer(0, 1, 30), Duration::from_secs(5))
            .unwrap();
        assert!(result.is_committed());
        first.shutdown(); // syncs every site's WAL
        // A brand-new process image over the same directories: balances must
        // come back from disk, not from the builder's seeds.
        let second = build();
        assert!(wait_until(Duration::from_secs(5), || {
            second
                .inspect(0, Duration::from_secs(1))
                .unwrap()
                .items
                .first()
                .map(|(_, e)| e == &Entry::Simple(Value::Int(70)))
                .unwrap_or(false)
        }));
        let s1 = second.inspect(1, Duration::from_secs(1)).unwrap();
        assert_eq!(s1.items[0].1, Entry::Simple(Value::Int(130)));
        assert_eq!(second.metrics().counter("live.cold_recoveries"), 2);
        // And the recovered cluster still processes transactions.
        let again = second
            .submit(1, &transfer(1, 0, 5), Duration::from_secs(5))
            .unwrap();
        assert!(again.is_committed());
        assert_eq!(live_total(&second), 200);
        second.shutdown();
    }

    #[test]
    fn live_restart_resolves_stranded_polyvalue() {
        use pv_core::Entry;
        use pv_store::{DiskWal, FsyncPolicy, SiteStore};
        // Craft on-disk images of a cluster that died mid-uncertainty: the
        // coordinator (site 0) durably decided *complete* and applied its own
        // write, but the participant (site 1) crashed staged, never having
        // learned the outcome.
        let dir = scratch("stranded");
        let txn = crate::ids::encode_txn(0, 0, 1);
        {
            let wal = DiskWal::open(dir.join("site-0"), FsyncPolicy::PerDecision).unwrap();
            let mut coord = SiteStore::open(Box::new(wal));
            coord.seed_item(ItemId(0), Value::Int(70));
            coord.record_decision(txn, true);
            coord.sync();
        }
        {
            let wal = DiskWal::open(dir.join("site-1"), FsyncPolicy::PerDecision).unwrap();
            let mut part = SiteStore::open(Box::new(wal));
            part.seed_item(ItemId(1), Value::Int(100));
            part.stage(txn, 0, vec![(ItemId(1), Entry::Simple(Value::Int(130)))]);
            part.sync();
        }
        let cluster = LiveCluster::from_topology(two_site_topo().data_dir(&dir)).unwrap();
        // Recovery re-stages the pending transaction, times out its wait
        // phase (installing an in-doubt polyvalue), inquires at the
        // coordinator, learns *complete*, and collapses the polyvalue into
        // the staged value.
        assert!(
            wait_until(Duration::from_secs(10), || {
                let s1 = cluster.inspect(1, Duration::from_secs(1)).unwrap();
                s1.poly_count == 0
                    && s1.items.first().map(|(_, e)| e == &Entry::Simple(Value::Int(130)))
                        == Some(true)
                    && s1.quiescent
            }),
            "stranded polyvalue must collapse to the decided outcome"
        );
        let s0 = cluster.inspect(0, Duration::from_secs(1)).unwrap();
        assert_eq!(s0.items[0].1, Entry::Simple(Value::Int(70)));
        assert_eq!(live_total(&cluster), 200, "conservation after restart");
        cluster.shutdown();
    }

    #[test]
    fn live_snapshot_read_is_coordination_free() {
        let cluster = LiveCluster::from_topology(two_site_topo().collect_trace()).unwrap();
        let result = cluster
            .submit(0, &transfer(0, 1, 30), Duration::from_secs(5))
            .unwrap();
        assert!(result.is_committed());
        let before = cluster.metrics();
        let (snap, entries) = cluster
            .snapshot_read(0, &[ItemId(0)], Duration::from_secs(5))
            .unwrap();
        assert!(snap > 0);
        assert_eq!(entries, vec![(ItemId(0), Entry::Simple(Value::Int(70)))]);
        // Empty item list = full site scan.
        let (_, all) = cluster
            .snapshot_read(1, &[], Duration::from_secs(5))
            .unwrap();
        assert_eq!(all, vec![(ItemId(1), Entry::Simple(Value::Int(130)))]);
        let after = cluster.metrics();
        assert_eq!(after.counter("store.snapshot_reads"), 2);
        // Coordination-free: no lock-table traffic, no new transactions or
        // protocol phases between the two captures.
        for c in [
            "lock.conflicts",
            "lock.queued",
            "lock.wounds",
            "txn.submitted",
            "inquire.sent",
            "outcome.forwarded",
        ] {
            assert_eq!(before.counter(c), after.counter(c), "{c} moved");
        }
        assert!(cluster.trace_text().contains("snapshot_read site=s0"));
        cluster.shutdown();
    }

    #[test]
    fn live_sequential_transfers_conserve() {
        let cluster = two_site_cluster();
        for k in 0..10 {
            let (a, b) = if k % 2 == 0 { (0, 1) } else { (1, 0) };
            let r = cluster.submit(a as u32 % 2, &transfer(a, b, 5 + k), Duration::from_secs(5));
            assert!(r.unwrap().is_committed());
        }
        let s0 = cluster.inspect(0, Duration::from_secs(1)).unwrap();
        let s1 = cluster.inspect(1, Duration::from_secs(1)).unwrap();
        let total: i64 = [&s0, &s1]
            .iter()
            .flat_map(|s| s.items.iter())
            .map(|(_, e)| e.as_simple().and_then(Value::as_int).expect("settled"))
            .sum();
        assert_eq!(total, 200);
        assert!(cluster.metrics().counter("txn.committed") >= 10);
        cluster.shutdown();
    }
}
