//! # polyvalues
//!
//! A full reproduction of Warren A. Montgomery's SOSP '79 paper
//! *Polyvalues: A Tool for Implementing Atomic Updates to Distributed Data*,
//! as a Rust workspace. This facade crate re-exports every component:
//!
//! * [`core`] (`pv-core`) — the polyvalue mechanism itself: the condition
//!   algebra over transaction identifiers, polyvalues with the paper's
//!   simplification rules, and the polytransaction evaluator (§3);
//! * [`analysis`] (`pv-analysis`) — ahead-of-time static analysis:
//!   transaction type checking, condition-algebra verification, and
//!   protocol-trace conformance, surfaced by the `pv-lint` binary;
//! * [`simnet`] (`pv-simnet`) — a deterministic discrete-event simulation
//!   substrate with network and failure models;
//! * [`store`] (`pv-store`) — per-site durable storage: WAL, item table, and
//!   the §3.3 outcome-dependency table;
//! * [`protocol`] (`pv-protocol`) — the sans-IO commit protocol: pure
//!   coordinator/participant/recovery state machines (typed events in,
//!   typed effects out) plus the exhaustive interleaving explorer behind
//!   the `pv-explore` binary;
//! * [`engine`] (`pv-engine`) — the distributed transaction engine driving
//!   the protocol machines over the simulation or live threads: 2PC with
//!   polyvalue installation on wait-phase timeouts, plus the blocking and
//!   relaxed baselines of §2;
//! * [`net`] (`pv-net`) — the socket runtime: the same engine over real
//!   TCP between real processes (`pv-node`, `pv-loadgen`), with a
//!   versioned, checksummed wire format;
//! * [`model`] (`pv-model`) — the §4.1 analytic model (Table 1);
//! * [`stochsim`] (`pv-stochsim`) — the §4.2 stochastic simulation
//!   (Table 2);
//! * [`apps`] (`pv-apps`) — the §5 applications: funds transfer,
//!   reservations, inventory/process control.
//!
//! ## Quick start
//!
//! ```
//! use polyvalues::core::{Entry, TxnId, Value};
//!
//! // A transfer left a balance in doubt under transaction T1:
//! let balance = Entry::in_doubt(
//!     Entry::Simple(Value::Int(90)),
//!     Entry::Simple(Value::Int(100)),
//!     TxnId(1),
//! );
//! // Either way at least 90 is available, so a charge of 50 is authorized
//! // *now*, without waiting for the failure to recover:
//! assert!(*balance.min_value() >= Value::Int(50));
//! // When the outcome is learned, the uncertainty collapses:
//! assert_eq!(balance.assign_outcome(TxnId(1), true), Entry::Simple(Value::Int(90)));
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `EXPERIMENTS.md` for the paper's tables and figures.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use pv_analysis as analysis;
pub use pv_apps as apps;
pub use pv_core as core;
pub use pv_engine as engine;
pub use pv_model as model;
pub use pv_net as net;
pub use pv_protocol as protocol;
pub use pv_simnet as simnet;
pub use pv_stochsim as stochsim;
pub use pv_store as store;

pub mod prelude {
    //! The one-stop import for embedding the engine: the value and
    //! polyvalue types, the cluster builders (simulated, live, and
    //! networked — all consuming the same [`Topology`]), the protocol
    //! knobs, and the observability surface (trace events and metric
    //! snapshots).
    //!
    //! ```
    //! use polyvalues::prelude::*;
    //!
    //! let cluster = ClusterBuilder::new(2, Directory::Mod(2))
    //!     .seed(7)
    //!     .item(0u64, 100i64)
    //!     .build();
    //! assert_eq!(cluster.item_entry(ItemId(0)).unwrap(), Entry::Simple(Value::Int(100)));
    //! ```

    pub use pv_analysis::{Code, Diagnostic, Report, Severity};
    pub use pv_core::{Entry, Expr, ItemId, Polyvalue, TransactionSpec, TxnId, Value};
    pub use pv_engine::{
        Client, ClientConfig, Cluster, ClusterBuilder, CommitProtocol, Directory, EngineConfig,
        EngineError, LiveBuilder, LiveCluster, LockPolicy, RandomTransfers, RuntimeConfig, Script,
        Topology, UniformRmw, Workload,
    };
    pub use pv_net::{NetBuilder, NetClient, NetCluster};
    pub use pv_simnet::{
        Histogram, HistogramSummary, Metrics, MetricsSnapshot, NetConfig, NodeId, SimDuration,
        SimTime, Trace, TraceEvent, TraceRecord, TraceSink,
    };
}
