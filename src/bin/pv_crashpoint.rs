//! `pv-crashpoint` — exhaustive crash-point recovery exploration.
//!
//! Runs a seeded multi-site transfer scenario, enumerates every
//! stable-storage append point each site reaches, then crashes the site at
//! each point in a fresh same-seed run, recovers it, and checks the tier-1
//! invariants (conservation, no residual polyvalues, quiescence) after
//! settling. FoundationDB-style: deterministic, reproducible, exhaustive.
//!
//! ```text
//! pv-crashpoint                          # defaults: 3 sites, both fsync policies
//! pv-crashpoint --seed 7 --transfers 40  # bigger scripted scenario
//! pv-crashpoint --policy per-decision    # single policy
//! pv-crashpoint --max-points 50          # cap points per site (CI budget)
//! ```
//!
//! Exit status is 0 when every crash point recovered cleanly, 1 when any
//! invariant violation was found, and 2 on usage errors.

use polyvalues::engine::crashpoint::{explore, CrashPointConfig};
use polyvalues::protocol::CommitProtocol;
use polyvalues::store::FsyncPolicy;
use std::process::ExitCode;

const USAGE: &str = "usage: pv-crashpoint [options]

options:
  --seed <n>          scenario seed (default 0xCAFE)
  --sites <n>         number of sites (default 3)
  --accounts <n>      number of accounts (default 12)
  --transfers <n>     scripted transfers (default 20)
  --policy <p>        fsync policy: per-append | per-decision | every-<n> | all
                      (default: all = per-decision and every-8)
  --protocol <p>      commit protocol: polyvalue | blocking-2pc | paxos-commit
                      (default: polyvalue)
  --max-points <n>    cap crash points per site, evenly sampled (default: all)
  -h, --help          this message
";

fn parse_policy(s: &str) -> Option<Vec<(String, FsyncPolicy)>> {
    match s {
        "all" => Some(vec![
            ("per-decision".into(), FsyncPolicy::PerDecision),
            ("every-8".into(), FsyncPolicy::EveryN(8)),
        ]),
        "per-append" => Some(vec![("per-append".into(), FsyncPolicy::PerAppend)]),
        "per-decision" => Some(vec![("per-decision".into(), FsyncPolicy::PerDecision)]),
        other => {
            let n = other.strip_prefix("every-")?.parse().ok()?;
            Some(vec![(other.into(), FsyncPolicy::EveryN(n))])
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = CrashPointConfig {
        seed: 0xCAFE,
        transfers: 20,
        ..CrashPointConfig::default()
    };
    let mut policies = parse_policy("all").expect("static default");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Option<&String> {
            let v = it.next();
            if v.is_none() {
                eprintln!("pv-crashpoint: {name} needs a value\n{USAGE}");
            }
            v
        };
        match arg.as_str() {
            "--seed" => match take("--seed").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.seed = v,
                None => return ExitCode::from(2),
            },
            "--sites" => match take("--sites").and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => cfg.sites = v,
                _ => return ExitCode::from(2),
            },
            "--accounts" => match take("--accounts").and_then(|v| v.parse().ok()) {
                Some(v) if v >= 2 => cfg.accounts = v,
                _ => return ExitCode::from(2),
            },
            "--transfers" => match take("--transfers").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.transfers = v,
                None => return ExitCode::from(2),
            },
            "--max-points" => match take("--max-points").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.max_points_per_site = Some(v),
                None => return ExitCode::from(2),
            },
            "--protocol" => match take("--protocol").map(String::as_str) {
                Some("polyvalue") => cfg.protocol = CommitProtocol::Polyvalue,
                Some("blocking-2pc") => cfg.protocol = CommitProtocol::Blocking2pc,
                Some("paxos-commit") => cfg.protocol = CommitProtocol::PaxosCommit,
                _ => {
                    eprintln!("pv-crashpoint: bad --protocol\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--policy" => match take("--policy").and_then(|v| parse_policy(v)) {
                Some(p) => policies = p,
                None => {
                    eprintln!("pv-crashpoint: bad --policy\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" | "help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("pv-crashpoint: unknown option {other}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let mut failed = false;
    for (label, policy) in policies {
        let report = explore(&CrashPointConfig {
            policy,
            ..cfg.clone()
        });
        println!(
            "policy {label:>12}: {report} (seed {:#x}, {} sites, {} transfers)",
            cfg.seed, cfg.sites, cfg.transfers
        );
        for v in &report.violations {
            println!("  VIOLATION {v}");
        }
        failed |= !report.ok();
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
