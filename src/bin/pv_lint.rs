//! `pv-lint` — the static-analysis front end.
//!
//! Runs the `pv-analysis` passes from the command line:
//!
//! ```text
//! pv-lint examples                    # check every example app's transaction specs
//! pv-lint cond "T1 | !T1" ...         # verify a condition set (one condition per arg)
//! pv-lint trace results/trace.txt     # conformance-check a recorded trace file
//! ```
//!
//! Exit status is 0 when no `Error`-severity diagnostics were found, 1 when
//! any were, and 2 on usage or I/O errors — so CI can gate on it directly.

use polyvalues::analysis::{check_condition_set, check_spec, check_trace_text, Report};
use polyvalues::apps::{FundsApp, InventoryApp, Replicated, ReservationsApp};
use polyvalues::core::cond::parse_condition;
use polyvalues::core::{Expr, ItemId, TransactionSpec};
use std::process::ExitCode;

const USAGE: &str = "usage: pv-lint <command>

commands:
  examples              analyze the transaction specs of every example application
  cond <cond>...        verify a condition set (one condition per argument, e.g. 'T1 & !T2')
  trace <file>...       conformance-check recorded trace files (format of Trace::to_text)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "examples" => lint_examples(),
            "cond" => lint_conds(rest),
            "trace" => lint_traces(rest),
            "-h" | "--help" | "help" => {
                print!("{USAGE}");
                ExitCode::SUCCESS
            }
            other => {
                eprintln!("pv-lint: unknown command {other}\n{USAGE}");
                ExitCode::from(2)
            }
        },
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Every transaction spec the example applications submit, by name.
fn example_specs() -> Vec<(&'static str, TransactionSpec)> {
    let funds = FundsApp::new(4, 1_000);
    let seats = ReservationsApp::new(3, 100);
    let parts = InventoryApp::new(3, 500, 100);
    let copies = Replicated::new((0..3).map(ItemId).collect());
    vec![
        ("funds::transfer", funds.transfer(0, 1, 50)),
        ("funds::deposit", funds.deposit(2, 25)),
        ("funds::withdraw", funds.withdraw(3, 10)),
        ("funds::authorize", funds.authorize(0, 75)),
        ("funds::balance", funds.balance(1)),
        ("reservations::reserve", seats.reserve(0)),
        ("reservations::cancel", seats.cancel(1)),
        ("reservations::seats_left", seats.seats_left(2)),
        ("inventory::consume", parts.consume(0, 5)),
        ("inventory::restock", parts.restock(1, 50)),
        ("inventory::reorder_due", parts.reorder_due(2)),
        ("replication::update_all", copies.update_all(|v| v.add(Expr::int(1)))),
        (
            "replication::update_all_if",
            copies.update_all_if(|v| v.ge(Expr::int(0)), |v| v.add(Expr::int(1))),
        ),
        ("replication::read_copy", copies.read_copy(1)),
        ("replication::audit", copies.audit()),
    ]
}

fn lint_examples() -> ExitCode {
    let mut failed = false;
    for (name, spec) in example_specs() {
        let report = check_spec(&spec).report;
        print_report(name, &report);
        failed |= report.has_errors();
    }
    verdict(failed)
}

fn lint_conds(args: &[String]) -> ExitCode {
    if args.is_empty() {
        eprintln!("pv-lint: cond needs at least one condition argument\n{USAGE}");
        return ExitCode::from(2);
    }
    let mut conds = Vec::new();
    for raw in args {
        match parse_condition(raw) {
            Ok(c) => conds.push(c),
            Err(e) => {
                eprintln!("pv-lint: cannot parse condition {raw:?}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let report = check_condition_set(&conds);
    print_report("condition set", &report);
    verdict(report.has_errors())
}

fn lint_traces(args: &[String]) -> ExitCode {
    if args.is_empty() {
        eprintln!("pv-lint: trace needs at least one file argument\n{USAGE}");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in args {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("pv-lint: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match check_trace_text(&text) {
            Ok(report) => {
                print_report(path, &report);
                failed |= report.has_errors();
            }
            Err(e) => {
                eprintln!("pv-lint: {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    verdict(failed)
}

fn print_report(name: &str, report: &Report) {
    if report.is_clean() {
        println!("{name}: clean");
    } else {
        for d in report.diagnostics() {
            println!("{name}: {d}");
        }
    }
}

fn verdict(failed: bool) -> ExitCode {
    if failed {
        eprintln!("pv-lint: errors found");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
