//! Regenerates the trace fixtures under `results/`:
//!
//! * `results/trace_in_doubt.txt` — a healthy recorded run: a cross-site
//!   transfer whose decision is lost to a partition, installing an in-doubt
//!   polyvalue that outcome propagation later collapses. Deterministic
//!   (fixed seed), so regeneration is byte-stable until the protocol or the
//!   trace format changes.
//! * `results/trace_decide_before_prepare.txt` — the same run corrupted:
//!   the first `prepared` record is moved after the commit decision, a
//!   transition the protocol can never make. `pv-lint trace` must flag it
//!   as PV020.
//! * `results/trace_paxos_commit.txt` — the same transfer under Paxos
//!   Commit with the decision broadcast cut by a partition: the stranded
//!   participant's wait timeout triggers a ballot takeover (`pc_takeover`)
//!   that re-learns the commit from the acceptors after the heal. No
//!   polyvalue is ever installed; `pv-lint trace` must find it clean.
//!
//! Run from the repository root: `cargo run --bin gen-trace-fixture`.

use polyvalues::prelude::*;

fn traced_partitioned_run(seed: u64, protocol: CommitProtocol) -> Cluster {
    let transfer = TransactionSpec::new()
        .guard(Expr::read(ItemId(0)).ge(Expr::int(30)))
        .update(ItemId(0), Expr::read(ItemId(0)).sub(Expr::int(30)))
        .update(ItemId(1), Expr::read(ItemId(1)).add(Expr::int(30)));
    let mut cluster = ClusterBuilder::new(2, Directory::Mod(2))
        .seed(seed)
        .net(NetConfig::default())
        .engine(protocol)
        .item(0u64, 100i64)
        .item(1u64, 100i64)
        .collect_trace()
        .client(
            ClientConfig {
                max_retries: 0,
                ..ClientConfig::default()
            },
            Box::new(Script::new(vec![transfer], SimDuration::from_millis(1))),
        )
        .build();
    // Run to the commit decision, cut the link before the participant hears
    // it, then heal and settle.
    while cluster.world.metrics().counter("txn.committed") < 1 {
        let next = SimTime(cluster.world.now().as_micros() + 1);
        cluster.run_until(next);
    }
    let now = cluster.world.now();
    cluster.world.schedule_partition(now, NodeId(0), NodeId(1));
    cluster.run_until(now + SimDuration::from_secs(1));
    let now = cluster.world.now();
    cluster.world.schedule_heal(now, NodeId(0), NodeId(1));
    cluster.run_until(now + SimDuration::from_secs(5));
    cluster
}

/// Moves the first `prepared` record after the first commit decision and
/// renumbers, seeding exactly the decide-before-prepare defect.
fn corrupt_decide_before_prepare(records: &[TraceRecord]) -> String {
    let prepared = records
        .iter()
        .position(|r| matches!(r.event, TraceEvent::Prepared { .. }))
        .expect("run contains a prepared event");
    let decided = records
        .iter()
        .position(|r| matches!(r.event, TraceEvent::Decided { completed: true, .. }))
        .expect("run contains a commit decision");
    assert!(prepared < decided, "healthy runs prepare before deciding");
    let mut reordered: Vec<TraceRecord> = records.to_vec();
    let moved = reordered.remove(prepared);
    reordered.insert(decided, moved);
    let mut out = String::new();
    for (seq, r) in reordered.iter().enumerate() {
        out.push_str(&format!("{:06} {:>10} {} {}\n", seq, r.at.as_micros(), r.node, r.event));
    }
    out
}

fn main() {
    let cluster = traced_partitioned_run(42, CommitProtocol::Polyvalue);
    let records = cluster.trace().records().to_vec();
    assert!(
        records
            .iter()
            .any(|r| matches!(r.event, TraceEvent::PolyvalueInstalled { .. })),
        "the partition must have installed a polyvalue"
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/trace_in_doubt.txt", cluster.trace().to_text())
        .expect("write healthy fixture");
    std::fs::write(
        "results/trace_decide_before_prepare.txt",
        corrupt_decide_before_prepare(&records),
    )
    .expect("write corrupted fixture");

    let paxos = traced_partitioned_run(42, CommitProtocol::PaxosCommit);
    let paxos_records = paxos.trace().records();
    assert!(
        paxos_records
            .iter()
            .any(|r| matches!(r.event, TraceEvent::PcTakeover { .. })),
        "the cut decision broadcast must have triggered a ballot takeover"
    );
    assert!(
        !paxos_records
            .iter()
            .any(|r| matches!(r.event, TraceEvent::PolyvalueInstalled { .. })),
        "Paxos Commit never installs polyvalues"
    );
    std::fs::write("results/trace_paxos_commit.txt", paxos.trace().to_text())
        .expect("write paxos fixture");
    println!(
        "wrote results/trace_in_doubt.txt ({} records), results/trace_decide_before_prepare.txt \
         and results/trace_paxos_commit.txt ({} records)",
        records.len(),
        paxos_records.len()
    );
}
