//! `pv-explore` — exhaustive interleaving exploration of the commit protocol.
//!
//! Enumerates every reachable ordering of message deliveries, timer firings,
//! and (optionally) site crash/recover events for a small scripted-transfer
//! cluster, asserting the protocol invariants (agreement, polyvalue
//! lifecycle, conservation) in every reachable state. See
//! `pv_protocol::explore` for the semantics.
//!
//! ```text
//! pv-explore [--protocol NAME] [--sites N] [--txns N] [--crashes N]
//!            [--amount N] [--initial N] [--depth N] [--max-states N]
//!            [--allow-truncation] [--summary FILE]
//! ```
//!
//! `--protocol` selects the commit protocol under test: `polyvalue`
//! (default), `blocking-2pc`, `relaxed`, or `paxos-commit`.
//!
//! Exit status: 0 on a clean, complete enumeration; 1 on invariant
//! violations; 2 if a bound truncated the search (unless
//! `--allow-truncation`).

use polyvalues::protocol::explore::{ExploreConfig, Explorer};
use polyvalues::protocol::CommitProtocol;
use std::fmt::Write as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut cfg = ExploreConfig::default();
    let mut allow_truncation = false;
    let mut summary_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let num = |args: &mut dyn Iterator<Item = String>| -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die(&format!("{arg} needs a numeric value")))
        };
        match arg.as_str() {
            "--protocol" => {
                let name = args
                    .next()
                    .unwrap_or_else(|| die("--protocol needs a value"));
                cfg.engine.protocol = match name.as_str() {
                    "polyvalue" => CommitProtocol::Polyvalue,
                    "blocking-2pc" => CommitProtocol::Blocking2pc,
                    "relaxed" => CommitProtocol::Relaxed { complete_prob: 0.5 },
                    "paxos-commit" => CommitProtocol::PaxosCommit,
                    other => die(&format!("unknown protocol: {other}")),
                };
            }
            "--sites" => cfg.sites = num(&mut args) as u32,
            "--txns" => cfg.txns = num(&mut args) as u32,
            "--crashes" => cfg.crashes = num(&mut args) as u32,
            "--amount" => cfg.amount = num(&mut args) as i64,
            "--initial" => cfg.initial = num(&mut args) as i64,
            "--depth" => cfg.max_depth = num(&mut args) as usize,
            "--max-states" => cfg.max_states = num(&mut args) as usize,
            "--allow-truncation" => allow_truncation = true,
            "--summary" => summary_path = args.next(),
            "--help" | "-h" => {
                println!(
                    "usage: pv-explore [--protocol NAME] [--sites N] [--txns N] [--crashes N] \
                     [--amount N] [--initial N] [--depth N] [--max-states N] \
                     [--allow-truncation] [--summary FILE]"
                );
                return ExitCode::SUCCESS;
            }
            other => die(&format!("unknown argument: {other}")),
        }
    }
    if cfg.sites == 0 || cfg.sites > 16 {
        die("--sites must be between 1 and 16");
    }

    eprintln!(
        "exploring: {} site(s), {} txn(s), crash budget {}, depth <= {}, states <= {}",
        cfg.sites, cfg.txns, cfg.crashes, cfg.max_depth, cfg.max_states
    );
    let start = std::time::Instant::now();
    let report = Explorer::new(cfg.clone()).run();
    let elapsed = start.elapsed();

    let mut summary = String::new();
    let _ = writeln!(summary, "pv-explore state-space summary");
    let _ = writeln!(
        summary,
        "scenario: sites={} txns={} crashes={} amount={} initial={}",
        cfg.sites, cfg.txns, cfg.crashes, cfg.amount, cfg.initial
    );
    let _ = writeln!(
        summary,
        "bounds:   depth<={} states<={}",
        cfg.max_depth, cfg.max_states
    );
    let _ = writeln!(summary, "states:      {}", report.states);
    let _ = writeln!(summary, "transitions: {}", report.transitions);
    let _ = writeln!(summary, "quiescent:   {}", report.quiescent);
    let _ = writeln!(summary, "deepest:     {}", report.deepest);
    let _ = writeln!(
        summary,
        "complete:    {}",
        if report.truncated { "NO (truncated)" } else { "yes" }
    );
    let _ = writeln!(summary, "violations:  {}", report.violations.len());
    for v in report.violations.iter().take(10) {
        let _ = writeln!(summary, "  [{}] {}", v.invariant, v.detail);
        for step in &v.path {
            let _ = writeln!(summary, "      {step}");
        }
    }
    let _ = writeln!(summary, "elapsed:     {:.2}s", elapsed.as_secs_f64());
    print!("{summary}");
    if let Some(path) = summary_path {
        if let Err(e) = std::fs::write(&path, &summary) {
            eprintln!("failed to write summary to {path}: {e}");
            return ExitCode::from(3);
        }
    }

    if !report.violations.is_empty() {
        ExitCode::FAILURE
    } else if report.truncated && !allow_truncation {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

fn die(msg: &str) -> ! {
    eprintln!("pv-explore: {msg}");
    std::process::exit(64);
}
