//! Vendored offline stand-in for the `bytes` crate.
//!
//! Provides the little-endian `Buf`/`BufMut` accessors and the
//! `Bytes`/`BytesMut` pair used by the WAL codec. `Bytes` is a cheaply
//! clonable immutable buffer (`Arc<[u8]>`); `BytesMut` is a growable buffer
//! that freezes into one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Sequential little-endian reads from the front of a buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skips `n` bytes. Panics if fewer remain.
    fn advance(&mut self, n: usize);
    /// Copies out the next `n` bytes. Panics if fewer remain.
    fn copy_bytes(&mut self, n: usize) -> Vec<u8>;

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.copy_bytes(1)[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.copy_bytes(4).try_into().expect("4 bytes"))
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.copy_bytes(8).try_into().expect("8 bytes"))
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.copy_bytes(8).try_into().expect("8 bytes"))
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn copy_bytes(&mut self, n: usize) -> Vec<u8> {
        let (head, rest) = self.split_at(n);
        let out = head.to_vec();
        *self = rest;
        out
    }
}

/// Sequential little-endian writes to the back of a buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(42);
        b.put_i64_le(-9);
        b.put_slice(b"hi");
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_i64_le(), -9);
        assert_eq!(r, b"hi");
    }

    #[test]
    fn bytes_equality_and_clone() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&a[..], &[1, 2, 3]);
    }
}
