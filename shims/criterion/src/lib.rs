//! Vendored offline stand-in for `criterion`.
//!
//! Implements the macro and builder surface the benches use, backed by a
//! deliberately simple harness: each benchmark is timed over a short
//! wall-clock window and the mean iteration time is printed. No statistics,
//! no HTML reports — just enough to keep `cargo bench` meaningful offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported like criterion's.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark label of the form `function/parameter`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id labelled `{function}/{parameter}`.
    pub fn new<P: fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    /// Total time spent in measured iterations.
    elapsed: Duration,
    /// Number of measured iterations.
    iters: u64,
    /// Wall-clock budget for the measurement loop.
    budget: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly within the measurement budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up once outside the measurement.
        black_box(routine());
        let start = Instant::now();
        while start.elapsed() < self.budget {
            let t0 = Instant::now();
            black_box(routine());
            self.elapsed += t0.elapsed();
            self.iters += 1;
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim's sample count is time-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim uses a fixed time budget.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `routine` against a borrowed input.
    pub fn bench_with_input<I, R>(&mut self, id: BenchmarkId, input: &I, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            budget: self.criterion.budget,
        };
        routine(&mut b, input);
        self.report(&id.name, &b);
        self
    }

    /// Benchmarks a routine with no parameter.
    pub fn bench_function<R>(&mut self, name: &str, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            budget: self.criterion.budget,
        };
        routine(&mut b);
        self.report(name, &b);
        self
    }

    fn report(&self, name: &str, b: &Bencher) {
        if b.iters == 0 {
            println!("{}/{name}: no iterations completed", self.name);
            return;
        }
        let per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
        println!(
            "{}/{name}: {:.1} ns/iter ({} iters)",
            self.name, per_iter, b.iters
        );
    }

    /// Ends the group (prints nothing extra in the shim).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let name = name.to_string();
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
