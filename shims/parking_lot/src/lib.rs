//! Vendored offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex`/`RwLock` with the parking_lot calling convention:
//! `lock()` returns the guard directly (a poisoned lock is recovered rather
//! than propagated, matching parking_lot's absence of poisoning).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{self, PoisonError};

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquisitions cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
