//! Vendored offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crates.io mirror, so the
//! workspace vendors the small slice of `rand` it actually uses: a seedable
//! small RNG (`rngs::SmallRng`, here xoshiro256++), the `Rng`/`SeedableRng`
//! traits, `random::<f64>()`, and `random_range` over integer ranges. The
//! API is call-compatible with `rand 0.9` for that surface; the streams are
//! deterministic but not bit-identical to upstream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard distribution
    /// (`f64` uniform in `[0, 1)`, integers uniform over the full range,
    /// `bool` fair).
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Samples uniformly from a half-open range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::random`].
pub trait Random {
    /// Draws one value from `rng`.
    fn random<R: RngCore>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits, exactly the rand convention for [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for bool {
    fn random<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ready-made generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // Expand the seed with SplitMix64, as rand does.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let u: f64 = r.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(r.random_range(0u64..7) < 7);
            let v = r.random_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }
}
