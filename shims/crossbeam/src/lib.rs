//! Vendored offline stand-in for `crossbeam`.
//!
//! Provides the `channel` module surface the live runtime uses: clonable
//! multi-producer multi-consumer channels with `recv_timeout`. Backed by a
//! mutex-and-condvar queue; `bounded` is accepted but does not apply
//! backpressure (the workspace only uses it for single-reply channels).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::Duration;

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half of a channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error from [`Sender::send`]: every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error from [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message available.
        Timeout,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Error from [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.lock().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.lock().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut s = self.0.lock();
            s.senders -= 1;
            if s.senders == 0 {
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.lock().receivers -= 1;
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut s = self.0.lock();
            if s.receivers == 0 {
                return Err(SendError(value));
            }
            s.queue.push_back(value);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a message, waiting up to `timeout` for one to arrive.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let mut s = self.0.lock();
            loop {
                if let Some(v) = s.queue.pop_front() {
                    return Ok(v);
                }
                if s.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let (next, result) = self
                    .0
                    .ready
                    .wait_timeout(s, timeout)
                    .unwrap_or_else(PoisonError::into_inner);
                s = next;
                if result.timed_out() {
                    return match s.queue.pop_front() {
                        Some(v) => Ok(v),
                        None if s.senders == 0 => Err(RecvTimeoutError::Disconnected),
                        None => Err(RecvTimeoutError::Timeout),
                    };
                }
            }
        }

        /// Dequeues a message if one is ready.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut s = self.0.lock();
            match s.queue.pop_front() {
                Some(v) => Ok(v),
                None if s.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }
    }

    fn make<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    /// Creates a channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make()
    }

    /// Creates a channel with nominal capacity `_cap`.
    ///
    /// The shim does not apply backpressure; the capacity is advisory.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        make()
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn send_recv() {
        let (tx, rx) = channel::unbounded();
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
    }

    #[test]
    fn timeout_when_empty() {
        let (_tx, rx) = channel::unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn disconnected_when_senders_dropped() {
        let (tx, rx) = channel::bounded::<u32>(1);
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cross_thread() {
        let (tx, rx) = channel::unbounded();
        let t = std::thread::spawn(move || tx.send(42).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(42));
        t.join().unwrap();
    }
}
