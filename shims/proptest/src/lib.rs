//! Vendored offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_perturb` /
//! `prop_recursive`, range and tuple strategies, `Just`, `any`,
//! `prop_oneof!`, `prop::collection::vec`, `prop::option::of`, and the
//! [`proptest!`] test macro with `#![proptest_config(...)]`.
//!
//! Differences from upstream, chosen for an offline build:
//! * generation is **deterministic** — each test case derives its RNG from
//!   the test's module path, name, and case index, so failures reproduce
//!   exactly on re-run;
//! * there is **no shrinking** — `prop_assert!` fails the case as-is;
//! * weighted `prop_oneof!` arms are not supported (the workspace does not
//!   use them);
//! * the `PROPTEST_CASES` environment variable overrides the case count of
//!   *every* config — including explicit `with_cases` — so CI can pin the
//!   generated workload globally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

/// Deterministic SplitMix64 stream driving every strategy.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A stream seeded directly.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The stream for one test case, derived from the test's identity so
    /// each case is independent and reproducible.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, then mix in the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h ^ (u64::from(case) << 1 | 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// Runtime configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many generated cases each test runs.
    pub cases: u32,
}

/// Parses a `PROPTEST_CASES`-style value; `None` when absent or malformed
/// (a malformed value falls back to the in-code count rather than erroring,
/// matching upstream's lenient env handling).
fn parse_cases(raw: &str) -> Option<u32> {
    let n: u32 = raw.trim().parse().ok()?;
    (n > 0).then_some(n)
}

/// The process-wide case-count override from the `PROPTEST_CASES`
/// environment variable, if set.
fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok().as_deref().and_then(parse_cases)
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(64),
        }
    }
}

impl ProptestConfig {
    /// Default configuration with a specific case count.
    ///
    /// Divergence from upstream, on purpose: `PROPTEST_CASES` overrides even
    /// an explicit in-code count, so CI can pin the generated workload (and
    /// with it the deterministic RNG streams) across every suite with one
    /// environment variable.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(cases),
        }
    }
}

/// A generator of values for property tests.
///
/// Unlike upstream proptest there is no value tree or shrinking: a strategy
/// simply produces a value from the RNG. `depth` bounds
/// [`Strategy::prop_recursive`] nesting.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng, depth: u32) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Transforms generated values with access to a private RNG stream.
    fn prop_perturb<O, F>(self, f: F) -> Perturb<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value, TestRng) -> O,
    {
        Perturb { source: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives a handle generating
    /// the recursive type and returns the composite strategy; recursion
    /// deeper than `depth` falls back to `self` (the leaf strategy).
    /// `_desired_size` and `_expected_branch_size` are accepted for
    /// API compatibility and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let node = Rc::new(Recursive {
            base: Rc::new(self) as Rc<dyn Strategy<Value = Self::Value>>,
            rec: RefCell::new(None),
            max_depth: depth,
        });
        let handle = BoxedStrategy(node.clone() as Rc<dyn Strategy<Value = Self::Value>>);
        let built = recurse(handle.clone());
        *node.rec.borrow_mut() = Some(Rc::new(built) as Rc<dyn Strategy<Value = Self::Value>>);
        handle
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<V: 'static>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng, depth: u32) -> V {
        self.0.generate(rng, depth)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng, depth: u32) -> O {
        (self.f)(self.source.generate(rng, depth))
    }
}

/// See [`Strategy::prop_perturb`].
pub struct Perturb<S, F> {
    source: S,
    f: F,
}

impl<S, F, O> Strategy for Perturb<S, F>
where
    S: Strategy,
    F: Fn(S::Value, TestRng) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng, depth: u32) -> O {
        let v = self.source.generate(rng, depth);
        let sub = TestRng::new(rng.next_u64());
        (self.f)(v, sub)
    }
}

/// See [`Strategy::prop_recursive`].
struct Recursive<V> {
    base: Rc<dyn Strategy<Value = V>>,
    rec: RefCell<Option<Rc<dyn Strategy<Value = V>>>>,
    max_depth: u32,
}

impl<V> Strategy for Recursive<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng, depth: u32) -> V {
        let rec = if depth < self.max_depth {
            self.rec.borrow().clone()
        } else {
            None
        };
        match rec {
            Some(s) => s.generate(rng, depth + 1),
            None => self.base.generate(rng, depth + 1),
        }
    }
}

/// A strategy producing one fixed (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng, _depth: u32) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-valued strategies; built by [`prop_oneof!`].
pub struct Union<V: 'static> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over the given arms (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng, depth: u32) -> V {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng, depth)
    }
}

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one value uniformly from the type's domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for an [`Arbitrary`] type; see [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng, _depth: u32) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng, _depth: u32) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng, _depth: u32) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}
impl_float_range_strategy!(f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng, depth: u32) -> Self::Value {
                ($(self.$idx.generate(rng, depth),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specifications accepted by [`vec`]: an exact `usize` or a
    /// half-open `Range<usize>`.
    pub trait SizeRange {
        /// Bounds as a half-open `[lo, hi)` interval.
        fn bounds(self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    impl SizeRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng, depth: u32) -> Vec<S::Value> {
            let span = (self.hi - self.lo).max(1) as u64;
            let len = self.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng, depth)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(hi > lo, "empty length range");
        VecStrategy { element, lo, hi }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng, depth: u32) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng, depth))
            }
        }
    }

    /// A strategy producing `None` a quarter of the time and `Some` of the
    /// inner strategy's value otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice between strategies producing the same type.
///
/// Weighted arms (`N => strategy`) are not supported by the shim.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property test (fails the case by panicking;
/// the shim does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Declares property tests: each `fn name(params) { body }` becomes a
/// `#[test]` that runs `body` once per generated case. Parameters are either
/// `pattern in strategy` or `name: Type` (sugar for `any::<Type>()`). An
/// optional leading `#![proptest_config(expr)]` sets the case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!([$cfg] $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!([$crate::ProptestConfig::default()] $($rest)*);
    };
}

/// Internal muncher for [`proptest!`]: expands one test fn per entry.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ([$cfg:expr]) => {};
    ([$cfg:expr] $(#[$attr:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let __pv_config: $crate::ProptestConfig = $cfg;
            for __pv_case in 0..__pv_config.cases {
                let mut __pv_rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __pv_case,
                );
                $crate::__proptest_body!(__pv_rng, $body; $($params)*);
            }
        }
        $crate::__proptest_tests!([$cfg] $($rest)*);
    };
}

/// Internal muncher for [`proptest!`] parameter lists.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($rng:ident, $body:block;) => { $body };
    ($rng:ident, $body:block; $pat:pat in $strat:expr, $($rest:tt)*) => {{
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng, 0);
        $crate::__proptest_body!($rng, $body; $($rest)*)
    }};
    ($rng:ident, $body:block; $pat:pat in $strat:expr) => {{
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng, 0);
        $body
    }};
    ($rng:ident, $body:block; $id:ident : $ty:ty, $($rest:tt)*) => {{
        let $id: $ty = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng, 0);
        $crate::__proptest_body!($rng, $body; $($rest)*)
    }};
    ($rng:ident, $body:block; $id:ident : $ty:ty) => {{
        let $id: $ty = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng, 0);
        $body
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn case_count_parsing() {
        assert_eq!(crate::parse_cases("128"), Some(128));
        assert_eq!(crate::parse_cases(" 16 "), Some(16));
        assert_eq!(crate::parse_cases("0"), None, "zero cases would skip every body");
        assert_eq!(crate::parse_cases(""), None);
        assert_eq!(crate::parse_cases("lots"), None);
        assert_eq!(crate::parse_cases("-3"), None);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let v = Strategy::generate(&(10u64..20), &mut rng, 0);
            assert!((10..20).contains(&v));
            let s = Strategy::generate(&(-5i64..5), &mut rng, 0);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug)]
        enum Tree {
            Leaf(u64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn tree_depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + tree_depth(a).max(tree_depth(b)),
            }
        }
        let strat = (0u64..8).prop_map(Tree::Leaf).prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::new(9);
        for _ in 0..100 {
            let t = strat.generate(&mut rng, 0);
            assert!(tree_depth(&t) <= 4, "runaway recursion: {t:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns((a, b) in (0u32..10, 0u32..10), flag: bool, n in 1usize..4) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(flag || !flag, true);
            prop_assert!(n >= 1 && n < 4);
        }

        #[test]
        fn vec_and_option(xs in prop::collection::vec(0i64..5, 0..6), o in prop::option::of(Just(7u8))) {
            prop_assert!(xs.len() < 6);
            if let Some(v) = o {
                prop_assert_eq!(v, 7);
            }
        }
    }
}
