//! Integration tests: the §5 applications keep their safety invariants
//! through crash/partition chaos, end to end.

use polyvalues::apps::{InventoryApp, ProductionTraffic, ReservationTraffic, ReservationsApp};
use polyvalues::core::ItemId;
use polyvalues::engine::{ClientConfig, Cluster, ClusterBuilder, CommitProtocol, EngineConfig};
use polyvalues::simnet::{FailureConfig, FailurePlan, NetConfig, SimRng, SimTime};

fn add_chaos(cluster: &mut Cluster, sites: u32, seed: u64) {
    FailurePlan::poisson(
        FailureConfig {
            crash_rate_per_sec: 0.15,
            mean_downtime_secs: 0.6,
            horizon: SimTime::from_secs(12),
        },
        sites,
        &mut SimRng::new(seed),
    )
    .apply(&mut cluster.world);
}

#[test]
fn reservations_never_overbook_under_chaos() {
    let app = ReservationsApp::new(6, 25);
    let mut builder = ClusterBuilder::new(3, ReservationsApp::directory(3))
        .seed(21)
        .net(NetConfig::default())
        .engine(EngineConfig::with_protocol(CommitProtocol::Polyvalue));
    builder = app.seed(builder);
    for _ in 0..2 {
        builder = builder.client(
            ClientConfig {
                record_results: false,
                ..ClientConfig::default()
            },
            Box::new(ReservationTraffic::new(app, 15.0, 0.2, 200)),
        );
    }
    let mut cluster = builder.build();
    add_chaos(&mut cluster, 3, 22);
    cluster.run_until(SimTime::from_secs(12));
    cluster.run_until(SimTime::from_secs(35));
    assert_eq!(cluster.total_poly_count(), 0, "uncertainty must resolve");
    app.assert_no_overbooking(&cluster);
    let m = cluster.world.metrics();
    assert!(m.counter("node.crashes") > 0, "chaos must have happened");
    assert!(m.counter("txn.committed") > 100, "sales must have happened");
}

#[test]
fn inventory_stock_never_negative_under_chaos() {
    let app = InventoryApp::new(10, 500, 50);
    let mut builder = ClusterBuilder::new(3, InventoryApp::directory(3))
        .seed(31)
        .net(NetConfig::default())
        .engine(EngineConfig::with_protocol(CommitProtocol::Polyvalue));
    builder = app.seed(builder);
    for _ in 0..2 {
        builder = builder.client(
            ClientConfig {
                record_results: false,
                ..ClientConfig::default()
            },
            Box::new(ProductionTraffic::new(app, 15.0, 0.35, 12, 200)),
        );
    }
    let mut cluster = builder.build();
    add_chaos(&mut cluster, 3, 32);
    cluster.run_until(SimTime::from_secs(12));
    cluster.run_until(SimTime::from_secs(35));
    assert_eq!(cluster.total_poly_count(), 0);
    app.assert_stock_sane(&cluster);
    let m = cluster.world.metrics();
    assert!(m.counter("node.crashes") > 0);
    assert!(m.counter("txn.committed") > 100);
}

#[test]
fn reservations_bounded_by_capacity_in_aggregate() {
    // A flight can never end with more bookings than the number of granted
    // reservations minus cancellations would allow, and never exceeds
    // capacity — even when the chaos hits the flight's home site.
    let app = ReservationsApp::new(1, 8);
    let mut builder = ClusterBuilder::new(2, ReservationsApp::directory(2))
        .seed(41)
        .net(NetConfig::default())
        .engine(EngineConfig::with_protocol(CommitProtocol::Polyvalue));
    builder = app.seed(builder);
    builder = builder.client(
        ClientConfig::default(),
        Box::new(ReservationTraffic::new(app, 10.0, 0.0, 40)),
    );
    let mut cluster = builder.build();
    add_chaos(&mut cluster, 2, 42);
    cluster.run_until(SimTime::from_secs(30));
    app.assert_no_overbooking(&cluster);
    // Exactly min(grants, capacity) seats are taken once settled.
    let granted = cluster
        .client(0)
        .expect("client 0 exists")
        .results()
        .iter()
        .filter(|(_, r)| r.fully_granted())
        .count() as i64;
    let booked = cluster
        .sum_items(std::iter::once(ItemId(0)))
        .expect("flight settled");
    assert!(booked <= app.capacity);
    assert!(
        granted <= booked,
        "every certainly-granted seat must be reflected in the count \
         (granted {granted}, booked {booked})"
    );
}
