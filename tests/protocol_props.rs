//! Property tests over the sans-IO protocol machines.
//!
//! Each case drives a small cluster of `pv_protocol::SiteMachine`s through a
//! random interleaving of deliveries, timer firings, and crash/recover
//! events (`Explorer::random_walk`) and asserts:
//!
//! 1. the machines never panic and no protocol invariant is violated on any
//!    step (agreement, install-only-after-timeout, collapse-only-after-
//!    outcome, no install after the site knew the outcome, conservation at
//!    quiescence);
//! 2. the trace the machines themselves emitted, rendered in the stable
//!    `Trace::to_text` line format, replays **clean** through the same
//!    `pv-lint trace` conformance checker users run on recorded traces —
//!    the machine can never emit a trace its own checker would reject.

use polyvalues::protocol::{ExploreConfig, Explorer};
use polyvalues::simnet::{NodeId, SimTime, Trace};
use proptest::prelude::*;

/// Walks `seed` through a scenario and returns the explorer's verdict plus
/// the emitted trace in text form.
fn walk(seed: u64, sites: u32, txns: u32, crashes: u32) -> (usize, String, usize) {
    let cfg = ExploreConfig {
        sites,
        txns,
        crashes,
        ..ExploreConfig::default()
    };
    let result = Explorer::new(cfg).random_walk(seed, 80);
    let mut trace = Trace::collecting();
    for (site, event) in &result.trace {
        trace.record(SimTime::ZERO, NodeId(*site), *event);
    }
    (result.steps, trace.to_text(), result.violations.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_walks_never_violate_invariants(seed: u64) {
        // Vary the scenario shape with the seed: 2–3 sites, 1–2 txns,
        // crash budget 0–2.
        let sites = 2 + (seed % 2) as u32;
        let txns = 1 + ((seed >> 1) % 2) as u32;
        let crashes = ((seed >> 2) % 3) as u32;
        let (steps, _, violations) = walk(seed, sites, txns, crashes);
        prop_assert!(steps > 0, "walk made no progress");
        prop_assert_eq!(violations, 0, "invariant violations on a random walk");
    }

    #[test]
    fn emitted_traces_replay_clean_through_the_lint_checker(seed: u64) {
        let sites = 2 + (seed % 2) as u32;
        let crashes = (seed >> 1) % 2;
        let (_, text, violations) = walk(seed, sites, 1, crashes as u32);
        prop_assert_eq!(violations, 0);
        let report = polyvalues::analysis::check_trace_text(&text)
            .expect("machine-emitted trace must parse");
        prop_assert!(
            report.is_clean(),
            "machine-emitted trace failed its own conformance checker:\n{}\n{}",
            report,
            text
        );
    }
}
