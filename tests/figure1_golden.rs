//! Golden test: the Figure-1 rendering produced from the *live*
//! `pv-protocol` participant machine must match the checked-in
//! `results/figure1.txt` byte for byte. If a transition changes, the figure
//! must be regenerated (`cargo run -p pv-bench --bin figure1`) — the table
//! in the paper reproduction can never silently drift from the code.

#[test]
fn figure1_matches_checked_in_results() {
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/results/figure1.txt"
    ))
    .expect("results/figure1.txt present");
    let rendered = polyvalues::protocol::render_figure1();
    assert_eq!(
        rendered, golden,
        "Figure 1 drifted from results/figure1.txt; regenerate with \
         `cargo run -p pv-bench --bin figure1 > results/figure1.txt`"
    );
}
