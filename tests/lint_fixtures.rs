//! Conformance checks over the committed trace fixtures in `results/`
//! (regenerate with `cargo run --bin gen-trace-fixture`).

use polyvalues::analysis::{check_trace_text, parse_trace_text, Code};

fn fixture(name: &str) -> String {
    let path = format!("{}/results/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

#[test]
fn healthy_fixture_parses_and_is_clean() {
    let text = fixture("trace_in_doubt.txt");
    let records = parse_trace_text(&text).expect("fixture parses");
    assert!(!records.is_empty());
    // The fixture exercises the full polyvalue path: install and collapse
    // are both present, so the checker's site-pairing logic actually runs.
    assert!(text.contains("polyvalue_installed"));
    assert!(text.contains("polyvalue_collapsed"));
    let report = check_trace_text(&text).unwrap();
    assert!(report.is_clean(), "unexpected findings:\n{report}");
}

#[test]
fn paxos_commit_fixture_parses_and_is_clean() {
    let text = fixture("trace_paxos_commit.txt");
    let records = parse_trace_text(&text).expect("fixture parses");
    assert!(!records.is_empty());
    // The fixture exercises the non-blocking path: the stranded participant
    // takes over the verdict instance instead of installing polyvalues, and
    // learns the outcome from the acceptors after the heal.
    assert!(text.contains("pc_takeover"));
    assert!(text.contains("outcome_learned"));
    assert!(!text.contains("polyvalue_installed"));
    let report = check_trace_text(&text).unwrap();
    assert!(report.is_clean(), "unexpected findings:\n{report}");
}

#[test]
fn corrupted_fixture_is_flagged_as_decide_before_prepare() {
    let report = check_trace_text(&fixture("trace_decide_before_prepare.txt")).unwrap();
    assert!(report.has_code(Code::DecideBeforePrepare));
    assert!(report.has_errors());
}
