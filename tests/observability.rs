//! Integration tests for the observability layer: trace determinism and
//! the agreement between trace events and phase-latency histograms.

use polyvalues::prelude::*;

/// Builds a two-site cluster, commits a cross-site transfer at site 0, cuts
/// the link before site 1 hears the decision (installing a polyvalue on its
/// wait timeout), then heals and settles. Crash-free, so every installed
/// polyvalue is collapsed by outcome propagation.
fn traced_in_doubt_run(seed: u64) -> Cluster {
    let transfer = TransactionSpec::new()
        .guard(Expr::read(ItemId(0)).ge(Expr::int(30)))
        .update(ItemId(0), Expr::read(ItemId(0)).sub(Expr::int(30)))
        .update(ItemId(1), Expr::read(ItemId(1)).add(Expr::int(30)));
    let mut cluster = ClusterBuilder::new(2, Directory::Mod(2))
        .seed(seed)
        .net(NetConfig::default())
        .engine(CommitProtocol::Polyvalue)
        .item(0u64, 100i64)
        .item(1u64, 100i64)
        .collect_trace()
        .client(
            ClientConfig {
                max_retries: 0,
                ..ClientConfig::default()
            },
            Box::new(Script::new(vec![transfer], SimDuration::from_millis(1))),
        )
        .build();
    // Step one microsecond at a time until the coordinator decides, then
    // partition before the decision reaches the participant.
    while cluster.world.metrics().counter("txn.committed") < 1 {
        let next = SimTime(cluster.world.now().as_micros() + 1);
        cluster.run_until(next);
    }
    let now = cluster.world.now();
    cluster.world.schedule_partition(now, NodeId(0), NodeId(1));
    cluster.run_until(now + SimDuration::from_secs(1));
    let now = cluster.world.now();
    cluster.world.schedule_heal(now, NodeId(0), NodeId(1));
    cluster.run_until(now + SimDuration::from_secs(5));
    cluster
}

#[test]
fn same_seed_runs_produce_byte_identical_traces() {
    let a = traced_in_doubt_run(42);
    let b = traced_in_doubt_run(42);
    let text_a = a.trace().to_text();
    let text_b = b.trace().to_text();
    assert!(!text_a.is_empty(), "the run must emit trace events");
    assert_eq!(
        text_a.as_bytes(),
        text_b.as_bytes(),
        "same-seed runs must serialize to identical trace streams"
    );
    // A different seed perturbs network timing, so the streams diverge —
    // the equality above is not vacuous.
    let c = traced_in_doubt_run(43);
    assert_ne!(text_a, c.trace().to_text());
}

#[test]
fn poly_lifetime_histogram_matches_trace_events() {
    let cluster = traced_in_doubt_run(7);
    assert_eq!(cluster.total_poly_count(), 0, "uncertainty must resolve");
    let trace = cluster.trace();
    let installed = trace.count(|e| matches!(e, TraceEvent::PolyvalueInstalled { .. }));
    let collapsed = trace.count(|e| matches!(e, TraceEvent::PolyvalueCollapsed { .. }));
    assert!(installed > 0, "the partition must have left a polyvalue");
    assert_eq!(installed, collapsed, "crash-free: every install collapses");
    let lifetimes = cluster
        .world
        .metrics()
        .histogram("poly.lifetime")
        .expect("lifetime histogram populated");
    assert_eq!(
        lifetimes.count(),
        installed,
        "one lifetime observation per installed polyvalue"
    );
    // Collapse events carry the same lifetime the histogram observed.
    for r in trace.records() {
        if let TraceEvent::PolyvalueCollapsed { lifetime_us, .. } = r.event {
            assert!(lifetime_us > 0);
        }
    }
}

#[test]
fn trace_stream_orders_protocol_transitions() {
    let cluster = traced_in_doubt_run(11);
    let records = cluster.trace().records();
    let pos = |pred: &dyn Fn(&TraceEvent) -> bool| records.iter().position(|r| pred(&r.event));
    let submitted = pos(&|e| matches!(e, TraceEvent::TxnSubmitted { .. })).unwrap();
    let prepared = pos(&|e| matches!(e, TraceEvent::Prepared { .. })).unwrap();
    let decided = pos(&|e| matches!(e, TraceEvent::Decided { .. })).unwrap();
    let installed = pos(&|e| matches!(e, TraceEvent::PolyvalueInstalled { .. })).unwrap();
    let collapsed = pos(&|e| matches!(e, TraceEvent::PolyvalueCollapsed { .. })).unwrap();
    assert!(submitted < prepared && prepared < decided);
    assert!(decided < installed, "install happens after the lost decision");
    assert!(installed < collapsed);
    // Sequence numbers are dense and ordered.
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.seq, i as u64);
    }
}

#[test]
fn storage_metrics_flow_into_the_registry() {
    // A busy run with a tiny compaction threshold and a mid-run crash must
    // surface the whole durability surface in the metrics registry: WAL
    // traffic, segment rotation, compaction, and recovery replay.
    let mut cluster = ClusterBuilder::new(3, Directory::Mod(3))
        .seed(9)
        .net(NetConfig::default())
        .engine(EngineConfig {
            compact_threshold: 16,
            ..EngineConfig::with_protocol(CommitProtocol::Polyvalue)
        })
        .uniform_items(12, 500)
        .client(
            ClientConfig {
                record_results: false,
                ..ClientConfig::default()
            },
            Box::new(RandomTransfers::new(12, 15.0, 40).with_limit(120)),
        )
        .build();
    let crash_at = SimTime::from_secs(2);
    cluster.world.schedule_crash(crash_at, NodeId(0));
    cluster
        .world
        .schedule_recover(crash_at + SimDuration::from_millis(700), NodeId(0));
    cluster.run_until(SimTime::from_secs(60));
    assert_eq!(cluster.total_poly_count(), 0);
    assert_eq!(cluster.sum_items((0..12).map(ItemId)).unwrap(), 12 * 500);

    let m = cluster.world.metrics();
    assert!(m.counter("wal.bytes") > 0, "WAL traffic must be measured");
    assert!(m.counter("wal.appends") > 0);
    assert!(m.counter("wal.syncs") > 0);
    assert!(
        m.counter("wal.segments") >= 3,
        "each site opens at least its initial segment"
    );
    assert!(
        m.counter("wal.compactions") > 0,
        "a 16-record threshold must force compactions in a 120-transfer run"
    );
    assert!(
        m.counter("recovery.replay_records") > 0,
        "the crashed site must replay its image on recovery"
    );
    // The recovery *duration* is wall-clock, so the simulation keeps it out
    // of its (byte-deterministic) metric exports; only the live runtime
    // observes it — see below.
    assert!(
        m.histogram("recovery.duration").is_none(),
        "wall-clock durations must not leak into deterministic sim metrics"
    );
}

#[test]
fn live_recovery_duration_histogram_is_observed() {
    use std::time::Duration;
    let topo = Topology::new(2, Directory::Mod(2))
        .engine(CommitProtocol::Polyvalue)
        .items(vec![(ItemId(0), Value::Int(100)), (ItemId(1), Value::Int(100))]);
    let cluster = LiveCluster::from_topology(topo).unwrap();
    cluster.crash(0).unwrap();
    cluster.recover(0).unwrap();
    let snapshot = cluster.inspect(0, Duration::from_secs(2)).unwrap();
    assert!(snapshot.up, "site must be back up after recovery");
    let m = cluster.metrics();
    let recoveries = m
        .histogram("recovery.duration")
        .expect("live recovery must observe a wall-clock duration");
    assert!(recoveries.count() >= 1, "one observation per recovery");
    assert!(m.counter("recovery.replay_records") > 0);
    cluster.shutdown();
}
