//! Regression tests: the batched simnet delivery path must not perturb
//! determinism. Same-seed runs — through a lossy, duplicating, reordering
//! network with a mid-run partition, the configuration that exercises every
//! branch of the send/deliver loop — must produce byte-identical protocol
//! traces *and* byte-identical metric exports, at both a small and a
//! medium cluster size.

use polyvalues::prelude::*;

/// One full seeded run; returns `(trace text, metrics JSON, Prometheus)`.
fn run(seed: u64, sites: u32) -> (String, String, String) {
    let items = u64::from(sites) * 4;
    let mut cluster = ClusterBuilder::new(sites, Directory::Mod(sites))
        .seed(seed)
        .net(NetConfig {
            drop_prob: 0.05,
            dup_prob: 0.05,
            reorder_window: SimDuration::from_millis(2),
            ..NetConfig::default()
        })
        .engine(CommitProtocol::Polyvalue)
        .uniform_items(items, 500)
        .collect_trace()
        .client(
            ClientConfig {
                record_results: false,
                ..ClientConfig::default()
            },
            Box::new(RandomTransfers::new(items, 100.0, 40).with_limit(120)),
        )
        .build();
    // A partition and heal force the in-doubt machinery (polyvalue installs,
    // outcome propagation) through the batched delivery loop.
    cluster
        .world
        .schedule_partition(SimTime::from_millis(500), NodeId(0), NodeId(1));
    cluster
        .world
        .schedule_heal(SimTime::from_secs(2), NodeId(0), NodeId(1));
    cluster.run_until(SimTime::from_secs(30));
    let trace = cluster.trace().to_text();
    let snapshot = cluster.world.metrics().snapshot();
    (trace, snapshot.to_json(), snapshot.to_prometheus())
}

#[test]
fn batched_delivery_keeps_traces_and_metrics_byte_identical() {
    for sites in [3, 10] {
        for seed in [1, 7, 42] {
            let a = run(seed, sites);
            let b = run(seed, sites);
            assert!(
                !a.0.is_empty(),
                "seed {seed}, {sites} sites: the run must emit trace events"
            );
            assert_eq!(
                a.0.as_bytes(),
                b.0.as_bytes(),
                "seed {seed}, {sites} sites: traces must be byte-identical"
            );
            assert_eq!(
                a.1.as_bytes(),
                b.1.as_bytes(),
                "seed {seed}, {sites} sites: metric JSON must be byte-identical"
            );
            assert_eq!(
                a.2.as_bytes(),
                b.2.as_bytes(),
                "seed {seed}, {sites} sites: Prometheus export must be byte-identical"
            );
        }
    }
}

#[test]
fn different_seeds_still_diverge() {
    // The byte-equality above must not be vacuous: distinct seeds perturb
    // network timing and therefore the trace stream.
    let a = run(1, 3);
    let b = run(7, 3);
    assert_ne!(a.0, b.0, "distinct seeds must give distinct traces");
}
