//! Integration tests re-enacting the paper's own worked material, across
//! crates, through the `polyvalues` facade.

use polyvalues::core::expr::{evaluate, SplitMode};
use polyvalues::core::{Condition, Entry, Expr, ItemId, TransactionSpec, TxnId, Value};
use std::collections::BTreeMap;

/// §3: "the condition T1 (T2 T3) would be true if T1 and at least one of T2
/// and T3 were completed."
#[test]
fn section3_condition_example() {
    let c = Condition::var(TxnId(1)).and(&Condition::var(TxnId(2)).or(&Condition::var(TxnId(3))));
    let eval = |t1: bool, t2: bool, t3: bool| {
        let a: BTreeMap<TxnId, bool> = [(TxnId(1), t1), (TxnId(2), t2), (TxnId(3), t3)].into();
        c.eval(&a)
    };
    assert!(eval(true, true, false));
    assert!(eval(true, false, true));
    assert!(eval(true, true, true));
    assert!(!eval(true, false, false));
    assert!(!eval(false, true, true));
}

/// §3.1: the in-doubt polyvalue `{⟨v, T⟩, ⟨v', ¬T⟩}` with the three
/// simplification rules.
#[test]
fn section31_in_doubt_construction_and_simplification() {
    let v = Entry::Simple(Value::Int(7));
    let v_prime = Entry::Simple(Value::Int(3));
    let e = Entry::in_doubt(v, v_prime, TxnId(9));
    let p = e.as_poly().expect("uncertain");
    assert_eq!(p.len(), 2);
    assert_eq!(
        p.condition_for(&Value::Int(7)),
        Some(&Condition::var(TxnId(9)))
    );
    assert_eq!(
        p.condition_for(&Value::Int(3)),
        Some(&Condition::not_var(TxnId(9)))
    );
    // Rule 1 (flattening): updating with a polyvalue does not nest.
    let nested = Entry::in_doubt(Entry::Simple(Value::Int(1)), e.clone(), TxnId(10));
    let np = nested.as_poly().expect("uncertain");
    assert_eq!(np.len(), 3);
    for (_, cond) in np.pairs() {
        // Conditions are flat products over T9/T10, not nested structures.
        assert!(cond
            .vars()
            .iter()
            .all(|t| [TxnId(9), TxnId(10)].contains(t)));
    }
    // Rule 2 (merging equal values).
    let merged = Entry::in_doubt(
        Entry::Simple(Value::Int(3)),
        Entry::Simple(Value::Int(3)),
        TxnId(11),
    );
    assert_eq!(merged, Entry::Simple(Value::Int(3)));
    // Rule 3 (dropping false conditions) is internal, but observable: a
    // condition that becomes false removes its pair.
    assert_eq!(
        e.assign_outcome(TxnId(9), true),
        Entry::Simple(Value::Int(7))
    );
}

/// §3.2: a polytransaction is partitioned into alternatives whose conditions
/// are complete and disjoint, and alternatives with false conditions are
/// never materialised.
#[test]
fn section32_polytransaction_partitioning() {
    let mut db: BTreeMap<ItemId, Entry<Value>> = BTreeMap::new();
    // Two items in doubt under the SAME transaction: conditions correlate.
    db.insert(
        ItemId(0),
        Entry::in_doubt(
            Entry::Simple(Value::Int(10)),
            Entry::Simple(Value::Int(0)),
            TxnId(1),
        ),
    );
    db.insert(
        ItemId(1),
        Entry::in_doubt(
            Entry::Simple(Value::Int(20)),
            Entry::Simple(Value::Int(0)),
            TxnId(1),
        ),
    );
    let spec =
        TransactionSpec::new().output("sum", Expr::read(ItemId(0)).add(Expr::read(ItemId(1))));
    let out = evaluate(&spec, &db, SplitMode::Lazy).unwrap();
    // Four combinations exist syntactically, but only two are consistent:
    // T1 ∧ T1 and ¬T1 ∧ ¬T1. The inconsistent ones are discarded (their
    // conditions are logically false).
    assert_eq!(out.alts.len(), 2);
    let conds: Vec<&Condition> = out.alts.iter().map(|a| &a.cond).collect();
    assert!(Condition::complete(conds.iter().copied()));
    assert!(Condition::pairwise_disjoint(&conds));
    let outputs = out.collate_outputs().unwrap();
    let p = outputs[0].1.as_poly().unwrap();
    assert_eq!(
        p.condition_for(&Value::Int(30)),
        Some(&Condition::var(TxnId(1)))
    );
    assert_eq!(
        p.condition_for(&Value::Int(0)),
        Some(&Condition::not_var(TxnId(1)))
    );
}

/// §3.3: once every outcome is known, "a single value pair will be left in
/// each polyvalue, eliminating all uncertainty from the database."
#[test]
fn section33_full_recovery_eliminates_uncertainty() {
    let mut entry = Entry::Simple(Value::Int(0));
    for t in 0..5u64 {
        entry = Entry::in_doubt(Entry::Simple(Value::Int(t as i64 + 1)), entry, TxnId(t));
    }
    assert!(entry.is_poly());
    for t in 0..5u64 {
        entry = entry.assign_outcome(TxnId(t), t % 2 == 0);
        entry.validate().unwrap();
    }
    assert!(entry.is_simple(), "all outcomes known ⇒ no uncertainty");
    // Outcomes: T0 ✓ (→1), T1 ✗, T2 ✓ (→3), T3 ✗, T4 ✓ (→5). Last
    // completed writer wins.
    assert_eq!(entry, Entry::Simple(Value::Int(5)));
}

/// §3.4 / §5: "a ticket agent would not be bothered by an uncertain answer
/// to a request for the number of seats remaining", while a credit check
/// that holds in every alternative is *not* uncertain at all.
#[test]
fn section34_output_uncertainty_classification() {
    let mut db: BTreeMap<ItemId, Entry<Value>> = BTreeMap::new();
    db.insert(
        ItemId(0),
        Entry::in_doubt(
            Entry::Simple(Value::Int(95)),
            Entry::Simple(Value::Int(100)),
            TxnId(1),
        ),
    );
    // Exact-value question: uncertain.
    let how_many = TransactionSpec::new().output("left", Expr::read(ItemId(0)));
    let out = evaluate(&how_many, &db, SplitMode::Lazy).unwrap();
    assert!(out.collate_outputs().unwrap()[0].1.is_poly());
    // Threshold question: certain despite the uncertainty.
    let enough = TransactionSpec::new().output("ok", Expr::read(ItemId(0)).ge(Expr::int(50)));
    let out = evaluate(&enough, &db, SplitMode::Lazy).unwrap();
    assert_eq!(
        out.collate_outputs().unwrap()[0].1,
        Entry::Simple(Value::Bool(true))
    );
    // Threshold question that straddles the uncertainty: uncertain again.
    let tight = TransactionSpec::new().output("ok", Expr::read(ItemId(0)).ge(Expr::int(98)));
    let out = evaluate(&tight, &db, SplitMode::Lazy).unwrap();
    assert!(out.collate_outputs().unwrap()[0].1.is_poly());
}

/// §5 reservations: "a new reservation can be granted so long as the largest
/// value in that polyvalue is less than the number of available seats."
#[test]
fn section5_reservation_largest_value_rule() {
    let capacity = 10i64;
    let booked = Entry::in_doubt(
        Entry::Simple(Value::Int(5)),
        Entry::Simple(Value::Int(4)),
        TxnId(1),
    );
    let mut db: BTreeMap<ItemId, Entry<Value>> = BTreeMap::new();
    db.insert(ItemId(0), booked.clone());
    let reserve = TransactionSpec::new()
        .guard(Expr::read(ItemId(0)).lt(Expr::int(capacity)))
        .update(ItemId(0), Expr::read(ItemId(0)).add(Expr::int(1)));
    let out = evaluate(&reserve, &db, SplitMode::Lazy).unwrap();
    // Largest possible count (5) < 10 ⇒ every alternative grants.
    assert_eq!(*booked.max_value(), Value::Int(5));
    assert!(out.all_granted());
    assert_eq!(
        out.collate_granted().unwrap(),
        Entry::Simple(Value::Bool(true))
    );
}
